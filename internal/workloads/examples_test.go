package workloads

import (
	"path/filepath"
	"testing"

	"dsmphase/internal/core"
	"dsmphase/internal/machine"
)

// examplePath resolves a repo examples/ file from the package dir.
func examplePath(parts ...string) string {
	return filepath.Join(append([]string{"..", "..", "examples"}, parts...)...)
}

// loadExample parses, registers and schedules cleanup for an example
// spec file.
func loadExample(t *testing.T, parts ...string) *SpecWorkload {
	t.Helper()
	sw, err := LoadSpecFile(examplePath(parts...))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Register(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { removeDynamic(sw.Name()) })
	return sw
}

// classifyPhases runs a registered workload on a 2-node machine and
// returns proc 0's BBV phase IDs at the behavior-test thresholds.
func classifyPhases(t *testing.T, name string, interval uint64) []int {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(2)
	cfg.IntervalInstructions = interval
	m := machine.New(cfg, w.Threads(2, SizeTest, 1))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	sigs := m.RecordsByProc()[0]
	if len(sigs) < 4 {
		t.Fatalf("%s: only %d intervals recorded", name, len(sigs))
	}
	return core.ClassifyRecorded(core.DetectorBBV, 16, 0.05, 0, sigs)
}

// switchRate is the fraction of intervals whose phase ID differs from
// the previous interval's.
func switchRate(ids []int) float64 {
	switches := 0
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			switches++
		}
	}
	return float64(switches) / float64(len(ids)-1)
}

func distinct(ids []int) int {
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	return len(seen)
}

// longestRun is the longest streak of identical consecutive phase IDs —
// how long the detector manages to stay settled in one phase.
func longestRun(ids []int) int {
	best, run := 1, 1
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			run++
		} else {
			run = 1
		}
		if run > best {
			best = run
		}
	}
	return best
}

// TestAdversarialSpecsDegradeDetector pins the point of the
// examples/adversarial_phases specs: against a well-behaved Table II
// generator (lu) at identical thresholds, both specs destabilize the
// classification — the detector flips phase IDs in most intervals and
// never settles into a long stable run.
func TestAdversarialSpecsDegradeDetector(t *testing.T) {
	loadExample(t, "adversarial_phases", "oscillate.wdl")
	loadExample(t, "adversarial_phases", "drift.wdl")
	const interval = 2_000

	base := classifyPhases(t, "lu", interval)
	osc := classifyPhases(t, "oscillate", interval)
	dri := classifyPhases(t, "drift", interval)

	baseRate := switchRate(base)
	if oscRate := switchRate(osc); oscRate < 2*baseRate || oscRate < 0.3 {
		t.Errorf("oscillate switch rate %.2f (lu: %.2f); want >2x lu and >0.3", oscRate, baseRate)
	}
	if driRate := switchRate(dri); driRate < 3*baseRate || driRate < 0.5 {
		t.Errorf("drift switch rate %.2f (lu: %.2f); want >3x lu and >0.5", driRate, baseRate)
	}
	// lu settles into long per-phase runs; under drift the detector
	// never holds a phase for long even though no boundary is abrupt.
	if baseRun, driRun := longestRun(base), longestRun(dri); driRun*4 > baseRun {
		t.Errorf("drift's longest stable run is %d intervals vs lu's %d; want <1/4", driRun, baseRun)
	}
}

// TestTraceIngestExample runs the committed example capture end to end:
// spec file -> inlined records -> replayed workload -> machine run with
// recorded intervals, on the capture's node count and a larger one.
func TestTraceIngestExample(t *testing.T) {
	sw := loadExample(t, "trace_ingest", "pingpong.wdl")
	if sw.Name() != "pingpong" {
		t.Fatalf("name = %q", sw.Name())
	}
	ids := classifyPhases(t, "pingpong", 2_000)
	if distinct(ids) < 2 {
		t.Errorf("pingpong classified as %d phase(s); the capture alternates two segment flavors", distinct(ids))
	}

	// The 2-proc capture must also run on a bigger machine (homes
	// remapped, procs folded; idle nodes just wait at barriers).
	cfg := machine.DefaultConfig(8)
	cfg.IntervalInstructions = 500
	m := machine.New(cfg, sw.Threads(8, SizeTest, 1))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.RecordsByProc()[0]) == 0 {
		t.Fatal("no intervals recorded on the 8-node replay")
	}
}
