package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
)

// FMM models SPLASH-2 FMM: an adaptive fast multipole N-body method
// (Table II: 65,536 particles). The synthetic kernel uses a uniform cell
// grid with contiguous spatial partitioning. Each timestep runs four
// bulk-synchronous phases — tree construction, upward (multipole)
// pass, cell-cell interactions, and downward/position update — with the
// interaction window alternating between near (3×3) and wide (5×5)
// every other timestep, mimicking the tree adaptivity that makes FMM's
// phase behaviour time-varying.
//
// Phase-detection relevance: tree build and update are integer/FP local
// phases, the interaction phase reads neighbour and far-field cell
// multipoles owned by other processors (remote, contended), so identical
// code signatures carry very different data-distribution costs at the
// partition boundary versus the interior.
type FMM struct{}

func init() { Register(FMM{}) }

// Name implements Workload.
func (FMM) Name() string { return "fmm" }

// Description implements Workload.
func (FMM) Description() string {
	return "SPLASH-2 fast multipole N-body (tree build / upward / interact / downward timesteps)"
}

type fmmParams struct {
	Particles int
	GridSide  int // cells per axis
	Steps     int
	FarSample int // far-field cells sampled per cell
}

func (FMM) params(sz Size) fmmParams {
	switch sz {
	case SizeTest:
		return fmmParams{Particles: 8192, GridSide: 8, Steps: 3, FarSample: 2}
	case SizeSmall:
		return fmmParams{Particles: 65536, GridSide: 16, Steps: 5, FarSample: 4}
	default:
		return fmmParams{Particles: 65536, GridSide: 32, Steps: 4, FarSample: 4} // paper scale
	}
}

// InputSet implements Workload.
func (w FMM) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d particles", p.Particles)
}

// FMM kernel kinds.
const (
	fmmBuild = iota
	fmmUpward
	fmmInteract
	fmmDownward
)

const pcFMM = 0x2000_0000

const (
	fmmMultipoleBytes = 256 // per-cell multipole expansion
	fmmParticleBytes  = 32  // per-particle record (one line)
)

type fmmRun struct {
	n     int
	p     fmmParams
	cells int
	ppc   int // particles per cell
	seed  uint64
}

// cellOwner partitions cells contiguously (row-major spatial blocks).
func (r *fmmRun) cellOwner(c int) int {
	return c * r.n / r.cells
}

// multAddr is the base address of cell c's multipole expansion.
func (r *fmmRun) multAddr(c int) uint64 {
	return machine.AddrAt(r.cellOwner(c), uint64(c)*fmmMultipoleBytes)
}

// partAddr is the address of particle idx of cell c.
func (r *fmmRun) partAddr(c, idx int) uint64 {
	const partRegion = 1 << 28 // keep particle arrays clear of multipoles
	return machine.AddrAt(r.cellOwner(c), partRegion+uint64(c*r.ppc+idx)*fmmParticleBytes)
}

// Threads implements Workload.
func (w FMM) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	cells := p.GridSide * p.GridSide
	run := &fmmRun{n: n, p: p, cells: cells, ppc: p.Particles / cells, seed: seed}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		// Cells owned by this thread.
		var mine []int
		for c := 0; c < cells; c++ {
			if run.cellOwner(c) == tid {
				mine = append(mine, c)
			}
		}
		for ts := 0; ts < p.Steps; ts++ {
			for _, c := range mine {
				items = append(items, item{kind: fmmBuild, a: c, d: ts})
			}
			items = append(items, item{kind: kindBarrier})
			for _, c := range mine {
				items = append(items, item{kind: fmmUpward, a: c, d: ts})
			}
			items = append(items, item{kind: kindBarrier})
			for _, c := range mine {
				items = append(items, item{kind: fmmInteract, a: c, d: ts})
			}
			items = append(items, item{kind: kindBarrier})
			for _, c := range mine {
				items = append(items, item{kind: fmmDownward, a: c, d: ts})
			}
			items = append(items, item{kind: kindBarrier})
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcFMM + 0xF00}
	}
	return out
}

func (r *fmmRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case fmmBuild:
		r.emitBuild(e, it.a)
	case fmmUpward:
		r.emitUpward(e, it.a)
	case fmmInteract:
		r.emitInteract(e, it.a, it.d)
	case fmmDownward:
		r.emitDownward(e, it.a)
	default:
		panic("fmm: unknown work item")
	}
}

// emitBuild: integer-heavy local scan assigning particles to the cell.
func (r *fmmRun) emitBuild(e *isa.Emitter, c int) {
	const pc = pcFMM + 0x000
	for i := 0; i < r.ppc; i++ {
		e.Load(pc+0, r.partAddr(c, i))
		e.Int(pc+4, 3)
		// Occasional mispredictable branch: particle on a cell boundary.
		e.Branch(pc+8, rng.Hash64(uint64(c*r.ppc+i))%8 == 0)
		e.LoopBranch(pc+12, i, r.ppc)
	}
}

// emitUpward: FP-heavy multipole accumulation over local particles.
func (r *fmmRun) emitUpward(e *isa.Emitter, c int) {
	const pc = pcFMM + 0x100
	for i := 0; i < r.ppc; i++ {
		e.Load(pc+0, r.partAddr(c, i))
		e.FP(pc+4, 3)
		e.LoopBranch(pc+8, i, r.ppc)
	}
	for l := 0; l < fmmMultipoleBytes/32; l++ {
		e.Store(pc+12, r.multAddr(c)+uint64(l)*32)
	}
}

// emitInteract: reads neighbour multipoles within the timestep's window
// plus a deterministic far-field sample; the heaviest and most remote
// phase.
func (r *fmmRun) emitInteract(e *isa.Emitter, c, ts int) {
	const pc = pcFMM + 0x200
	side := r.p.GridSide
	cx, cy := c%side, c/side
	window := 1 // 3×3
	if ts%2 == 1 {
		window = 2 // 5×5 on odd timesteps (deeper tree opening)
	}
	read := func(oc int) {
		base := r.multAddr(oc)
		for l := 0; l < fmmMultipoleBytes/32; l++ {
			e.Load(pc+0, base+uint64(l)*32)
			e.FP(pc+4, 2)
			e.LoopBranch(pc+8, l, fmmMultipoleBytes/32)
		}
	}
	for dy := -window; dy <= window; dy++ {
		for dx := -window; dx <= window; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= side || ny >= side {
				continue
			}
			read(ny*side + nx)
		}
	}
	// Far-field sample: deterministic pseudo-random distant cells.
	for s := 0; s < r.p.FarSample; s++ {
		h := rng.Hash64(r.seed ^ uint64(c)<<20 ^ uint64(ts)<<8 ^ uint64(s))
		read(int(h % uint64(r.cells)))
	}
}

// emitDownward: local force application and position update.
func (r *fmmRun) emitDownward(e *isa.Emitter, c int) {
	const pc = pcFMM + 0x300
	for i := 0; i < r.ppc; i++ {
		e.Load(pc+0, r.partAddr(c, i))
		e.Load(pc+4, r.multAddr(c))
		e.FP(pc+8, 4)
		e.Store(pc+12, r.partAddr(c, i))
		e.LoopBranch(pc+16, i, r.ppc)
	}
}
