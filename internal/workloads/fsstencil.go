package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
)

// FSStencil is an adversarial microbenchmark (not a Table II
// application): a stencil-style relaxation whose per-processor state
// words are packed so that up to four processors' 8-byte accumulators
// share one 32 B cache line homed at node 0. Every processor writes
// ONLY its own word — there is no true data sharing — yet under the
// line-granular directory protocol each write invalidates the other
// occupants' copies, so the communicate phase degenerates into an
// invalidation ping-pong (false sharing). The page-granular IVY backend
// sees the same access stream but accounts it in page terms: its
// line-level Invalidations counter stays untouched by construction,
// which is exactly the metric contrast the protocol behavior tests pin.
//
// Phase structure: each iteration alternates a private compute phase
// (loads/stores in the processor's own region) with a communicate phase
// (update own shared word, read the line-mates' words), separated by
// barriers — so detectors see two clearly distinct phases whose timing
// gap is protocol-dependent.
//
// Expressed over the IR as Stride (private compute) + Share
// (sharing-degree-4 exchange over word-packed slots); the stream is
// byte-identical to the pre-IR hand-written emitter (pinned by
// TestIRStreamEquivalence).
type FSStencil struct{}

func init() { Register(FSStencil{}) }

// Name implements Workload.
func (FSStencil) Name() string { return "fsstencil" }

// Description implements Workload.
func (FSStencil) Description() string {
	return "adversarial false-sharing stencil (distinct words, one cache line)"
}

type fsstencilParams struct {
	Iters   int
	Compute int // private inner ops per iteration
	Updates int // shared-word updates per communicate phase
}

func (FSStencil) params(sz Size) fsstencilParams {
	switch sz {
	case SizeTest:
		return fsstencilParams{Iters: 16, Compute: 512, Updates: 128}
	case SizeSmall:
		return fsstencilParams{Iters: 24, Compute: 512, Updates: 128}
	default:
		return fsstencilParams{Iters: 64, Compute: 1024, Updates: 256}
	}
}

// InputSet implements Workload.
func (w FSStencil) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d iterations, %d updates/line, 4 words per 32B line", p.Iters, p.Updates)
}

const pcFSStencil = 0x7000_0000

// fsWordsPerLine is how many 8-byte accumulators pack into one 32 B
// line: the false-sharing factor (the Share block's Degree).
const fsWordsPerLine = 4

// program builds the IR form: per iteration, a private Stride phase
// then a Share phase over the word-packed line at home 0. Slot q of
// the shared array is AddrAt(0, q*8) — four words per 32 B line.
func (w FSStencil) program(sz Size) *Program {
	p := w.params(sz)
	prog := &Program{BarrierPC: pcFSStencil + 0xF00}
	for it := 0; it < p.Iters; it++ {
		prog.Phases = append(prog.Phases,
			Phase{Blocks: []Block{&Stride{
				PC: pcFSStencil + 0x000, Count: p.Compute, Wrap: 1024, Offset: it,
				IntOps: 2, Store: true,
				Region: Region{Home: OwnerThread, Base: 1 << 24, ElemBytes: 8},
			}}},
			Phase{Blocks: []Block{&Share{
				PC: pcFSStencil + 0x100, Count: p.Updates, Degree: fsWordsPerLine,
				IntOps: 1,
				Slots:  Region{Home: 0, SlotBytes: 8},
			}}},
		)
	}
	return prog
}

// Threads implements Workload.
func (w FSStencil) Threads(n int, sz Size, seed uint64) []isa.Thread {
	return w.program(sz).Threads(n, seed)
}
