package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
)

// FSStencil is an adversarial microbenchmark (not a Table II
// application): a stencil-style relaxation whose per-processor state
// words are packed so that up to four processors' 8-byte accumulators
// share one 32 B cache line homed at node 0. Every processor writes
// ONLY its own word — there is no true data sharing — yet under the
// line-granular directory protocol each write invalidates the other
// occupants' copies, so the communicate phase degenerates into an
// invalidation ping-pong (false sharing). The page-granular IVY backend
// sees the same access stream but accounts it in page terms: its
// line-level Invalidations counter stays untouched by construction,
// which is exactly the metric contrast the protocol behavior tests pin.
//
// Phase structure: each iteration alternates a private compute phase
// (loads/stores in the processor's own region) with a communicate phase
// (update own shared word, read the line-mates' words), separated by
// barriers — so detectors see two clearly distinct phases whose timing
// gap is protocol-dependent.
type FSStencil struct{}

func init() { Register(FSStencil{}) }

// Name implements Workload.
func (FSStencil) Name() string { return "fsstencil" }

// Description implements Workload.
func (FSStencil) Description() string {
	return "adversarial false-sharing stencil (distinct words, one cache line)"
}

type fsstencilParams struct {
	Iters   int
	Compute int // private inner ops per iteration
	Updates int // shared-word updates per communicate phase
}

func (FSStencil) params(sz Size) fsstencilParams {
	switch sz {
	case SizeTest:
		return fsstencilParams{Iters: 16, Compute: 512, Updates: 128}
	case SizeSmall:
		return fsstencilParams{Iters: 24, Compute: 512, Updates: 128}
	default:
		return fsstencilParams{Iters: 64, Compute: 1024, Updates: 256}
	}
}

// InputSet implements Workload.
func (w FSStencil) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d iterations, %d updates/line, 4 words per 32B line", p.Iters, p.Updates)
}

// FSStencil kernel kinds.
const (
	fsCompute = iota
	fsCommunicate
)

const pcFSStencil = 0x7000_0000

// fsWordsPerLine is how many 8-byte accumulators pack into one 32 B
// line: the false-sharing factor.
const fsWordsPerLine = 4

type fsstencilRun struct {
	n int
	p fsstencilParams
}

// sharedWordAddr is processor tid's private 8-byte accumulator inside
// the packed array at home node 0: line tid/4, word tid%4. Distinct
// processors never touch the same word, only the same line.
func (r *fsstencilRun) sharedWordAddr(tid int) uint64 {
	line := uint64(tid / fsWordsPerLine)
	word := uint64(tid % fsWordsPerLine)
	return machine.AddrAt(0, line*32+word*8)
}

// privAddr is an address in tid's private region.
func (r *fsstencilRun) privAddr(tid, i int) uint64 {
	return machine.AddrAt(tid, 1<<24|uint64(i)*8)
}

// lineMates returns the processors packed into tid's line, excluding
// tid itself.
func (r *fsstencilRun) lineMates(tid int) []int {
	base := tid / fsWordsPerLine * fsWordsPerLine
	var out []int
	for q := base; q < base+fsWordsPerLine && q < r.n; q++ {
		if q != tid {
			out = append(out, q)
		}
	}
	return out
}

// Threads implements Workload.
func (w FSStencil) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	run := &fsstencilRun{n: n, p: p}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for it := 0; it < p.Iters; it++ {
			items = append(items, item{kind: fsCompute, a: tid, b: it})
			items = append(items, item{kind: kindBarrier})
			items = append(items, item{kind: fsCommunicate, a: tid})
			items = append(items, item{kind: kindBarrier})
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcFSStencil + 0xF00}
	}
	return out
}

func (r *fsstencilRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case fsCompute:
		r.emitCompute(e, it.a, it.b)
	case fsCommunicate:
		r.emitCommunicate(e, it.a)
	default:
		panic("fsstencil: unknown work item")
	}
}

// emitCompute: private relaxation sweep — all traffic stays local.
func (r *fsstencilRun) emitCompute(e *isa.Emitter, tid, iter int) {
	const pc = pcFSStencil + 0x000
	for i := 0; i < r.p.Compute; i++ {
		e.Load(pc+0, r.privAddr(tid, (i+iter)%1024))
		e.Int(pc+4, 2)
		e.Store(pc+8, r.privAddr(tid, (i+iter)%1024))
		e.LoopBranch(pc+12, i, r.p.Compute)
	}
}

// emitCommunicate: hammer the processor's own word of the packed line,
// then read the line-mates' words — the false-sharing hot loop.
func (r *fsstencilRun) emitCommunicate(e *isa.Emitter, tid int) {
	const pc = pcFSStencil + 0x100
	mates := r.lineMates(tid)
	for u := 0; u < r.p.Updates; u++ {
		e.Store(pc+0, r.sharedWordAddr(tid))
		e.Int(pc+4, 1)
		for j, q := range mates {
			e.Load(pc+8+uint32(j)*4, r.sharedWordAddr(q))
		}
		e.LoopBranch(pc+24, u, r.p.Updates)
	}
}
