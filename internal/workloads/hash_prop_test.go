package workloads

import "testing"

// TestDefinitionHashEquivalence pins the canonicalization contract of
// the definition hash: two spec sources that parse to the same
// workload definition hash identically, regardless of JSON key order,
// whitespace, or writing a default value explicitly — while sources
// that differ in meaning (however subtly) must not collide.
func TestDefinitionHashEquivalence(t *testing.T) {
	hash := func(t *testing.T, src string) uint64 {
		t.Helper()
		sw, err := ParseSpec([]byte(src))
		if err != nil {
			t.Fatalf("parse: %v\nsource: %s", err, src)
		}
		return sw.Hash()
	}

	equivalent := []struct {
		name string
		a, b string
	}{
		{
			"key order",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
			`{"phases":[{"blocks":[{"wrap":16,"count":8,"kind":"stride"}]}],"description":"d","name":"hp"}`,
		},
		{
			"whitespace and indentation",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
			"{\n  \"name\": \"hp\",\n  \"description\": \"d\",\n  \"phases\": [\n    { \"blocks\": [\n      { \"kind\": \"stride\", \"count\": 8, \"wrap\": 16 }\n    ] }\n  ]\n}\n",
		},
		{
			"explicit zero defaults on the spec",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
			`{"name":"hp","description":"d","pc_base":0,"repeat":0,"phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
		},
		{
			"explicit zero defaults on phase and block",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
			`{"name":"hp","description":"d","phases":[{"repeat":0,"no_barrier":false,"blocks":[{"kind":"stride","count":8,"wrap":16,"int_ops":0,"fp_ops":0,"store":false,"offset":0,"offset_step":0,"salt":0,"skew":0,"per_proc":false}]}]}`,
		},
		{
			"null optional stanzas are absent stanzas",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
			`{"name":"hp","description":"d","scale":null,"phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":null,"accum":null}]}]}`,
		},
		{
			"null home is absent home",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":{"base":4096}}]}]}`,
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":{"base":4096,"home":null}}]}]}`,
		},
		{
			"zero defaults inside a region",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":{"base":4096}}]}]}`,
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":{"base":4096,"elem_bytes":0,"slot_bytes":0,"slot_wrap":0}}]}]}`,
		},
	}
	for _, tc := range equivalent {
		t.Run("equiv/"+tc.name, func(t *testing.T) {
			if ha, hb := hash(t, tc.a), hash(t, tc.b); ha != hb {
				t.Fatalf("equivalent sources hash differently: %#x vs %#x", ha, hb)
			}
		})
	}

	distinct := []struct {
		name string
		a, b string
	}{
		{
			// Home is pointer-typed: explicit 0 homes at node 0,
			// absent means the owner thread. These must not collide.
			"explicit home 0 vs absent home",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":{"base":4096,"home":0}}]}]}`,
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":{"base":4096}}]}]}`,
		},
		{
			// An explicit empty region selects region defaults
			// (base 0, elem 8); no region selects the block's own
			// default region. Different meaning, different hash.
			"empty region vs absent region",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16,"region":{}}]}]}`,
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
		},
		{
			"value change",
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
			`{"name":"hp","description":"d","phases":[{"blocks":[{"kind":"stride","count":9,"wrap":16}]}]}`,
		},
		{
			"repeat 1 vs repeat 2",
			`{"name":"hp","description":"d","phases":[{"repeat":1,"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
			`{"name":"hp","description":"d","phases":[{"repeat":2,"blocks":[{"kind":"stride","count":8,"wrap":16}]}]}`,
		},
	}
	for _, tc := range distinct {
		t.Run("distinct/"+tc.name, func(t *testing.T) {
			if ha, hb := hash(t, tc.a), hash(t, tc.b); ha == hb {
				t.Fatalf("distinct sources collide at %#x", ha)
			}
		})
	}
}
