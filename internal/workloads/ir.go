package workloads

// The phased access-pattern IR. A workload is a Program: an ordered
// sequence of Phases, each a composition of primitive Blocks
// (stride/stencil/random/tree-pointer-chase/reduction/broadcast/
// share/replay) with an explicit placement policy, sharing degree,
// per-thread skew and barrier structure. Programs compile onto the
// existing scriptThread/isa.Emitter machinery, so every IR workload
// inherits the determinism contract for free: instruction streams are
// pure functions of (n, size, seed), independent of host, shard split
// or worker count. The hand-written generators (fsstencil, pagethrash,
// ocean) are expressed over this IR byte-identically to their legacy
// emitters — pinned by TestIRStreamEquivalence — and the DSL and
// trace-ingestion front ends (dsl.go, replay in this file) target the
// same primitives, which is what turns "six apps" into a compositional
// scenario space.

import (
	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
)

// Ctx is the run geometry a Program is compiled against: the processor
// count and the workload base seed. Blocks receive it both when listing
// their work items and when emitting instructions, so data partitioning
// and seeded choices can depend on n without baking n into the Program.
type Ctx struct {
	// N is the processor/thread count.
	N int
	// Seed is the workload base seed feeding every seeded choice.
	Seed uint64
}

// BlockItem is one schedulable unit of a block's work — the IR
// equivalent of the scriptThread item payload. A block splits its
// per-thread work into items (typically chunks of rows, walks or
// instructions) so the emitter produces bounded batches and the
// scheduler can interleave threads at item granularity.
type BlockItem struct {
	A, B, C, D int
}

// Block is an IR primitive: a parameterized access pattern that knows
// how to partition its work across threads (Items) and how to render
// one work item into instructions (Emit). Emit must be a pure function
// of (ctx, item, receiver fields) — no mutable state — so repeated
// drains of the same Program are byte-identical.
type Block interface {
	// Items lists thread tid's work for one execution of the block, in
	// program order.
	Items(c *Ctx, tid int) []BlockItem
	// Emit renders one work item into the emitter.
	Emit(c *Ctx, e *isa.Emitter, it BlockItem)
}

// Phase is one barrier-delimited step of a Program: every thread
// executes its share of every block, then (unless NoBarrier) all
// threads meet at a barrier. Blocks within a phase run back-to-back on
// each thread in slice order.
type Phase struct {
	Blocks []Block
	// NoBarrier suppresses the phase-closing barrier; use only for
	// phases that deliberately let threads run ahead.
	NoBarrier bool
}

// Program is a compiled workload: a barrier PC plus the phase
// sequence. Threads lowers it onto scriptThread — one scriptThread
// item per BlockItem, kindBarrier items between phases — so the
// batching (and therefore the scheduler interleaving) of an IR
// workload is exactly the item structure the blocks declare.
type Program struct {
	// BarrierPC is the static PC of the Sync instruction closing each
	// phase.
	BarrierPC uint32
	Phases    []Phase
}

// Threads compiles the program for n processors under the given seed.
func (p *Program) Threads(n int, seed uint64) []isa.Thread {
	ctx := &Ctx{N: n, Seed: seed}
	// Assign each distinct block a stable kind index so the shared emit
	// closure can dispatch on it.
	var blocks []Block
	index := map[Block]int{}
	for _, ph := range p.Phases {
		for _, b := range ph.Blocks {
			if _, ok := index[b]; !ok {
				index[b] = len(blocks)
				blocks = append(blocks, b)
			}
		}
	}
	emit := func(it item, e *isa.Emitter) {
		blocks[it.kind].Emit(ctx, e, BlockItem{A: it.a, B: it.b, C: it.c, D: it.d})
	}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for _, ph := range p.Phases {
			for _, b := range ph.Blocks {
				for _, bi := range b.Items(ctx, tid) {
					items = append(items, item{kind: index[b], a: bi.A, b: bi.B, c: bi.C, d: bi.D})
				}
			}
			if !ph.NoBarrier {
				items = append(items, item{kind: kindBarrier})
			}
		}
		out[tid] = &scriptThread{items: items, emit: emit, barrierPC: p.BarrierPC}
	}
	return out
}

// OwnerThread as a Region home means "the node of the thread touching
// the region" — i.e. thread-private or thread-partitioned data.
const OwnerThread = -1

// Region is a block's placement policy: where its data lives and how
// thread slots and element indices map to byte addresses. The address
// of element e touched by (or belonging to) thread t is
//
//	AddrAt(home, Base + (t*SlotBytes) mod SlotWrap + e*ElemBytes)
//
// with home = t itself when Home is OwnerThread. SlotBytes spaces
// threads apart within a shared region (SlotBytes < cache line size
// induces false sharing; a multiple of the page size induces
// page-granular conflicts under IVY); SlotWrap folds the slots so many
// threads collide in a bounded footprint.
type Region struct {
	// Home is the owning node, or OwnerThread.
	Home int
	// Base is the byte offset of the region within the home's memory.
	Base uint64
	// ElemBytes is the stride between consecutive element indices.
	ElemBytes uint64
	// SlotBytes is the per-thread slot offset within the region.
	SlotBytes uint64
	// SlotWrap, when non-zero, wraps the slot offset modulo this many
	// bytes.
	SlotWrap uint64
}

// addr resolves the address of element elem in thread tid's slot.
func (r Region) addr(c *Ctx, tid, elem int) uint64 {
	home := r.Home
	if home == OwnerThread {
		home = tid
	}
	slot := uint64(tid) * r.SlotBytes
	if r.SlotWrap > 0 {
		slot %= r.SlotWrap
	}
	return machine.AddrAt(home, r.Base+slot+uint64(elem)*r.ElemBytes)
}

// skewCount applies per-thread load imbalance: thread 0 gets pct%
// extra work, falling off linearly to none on the last thread. Skew is
// what makes barrier stall time (and thus the DDS contention term)
// phase-dependent in irregular codes like barnes.
func skewCount(count, pct, tid, n int) int {
	if pct <= 0 || n <= 1 {
		return count
	}
	return count + count*pct*(n-1-tid)/(100*(n-1))
}

// gridAddr is the canonical strip-partitioned 2-D placement shared by
// the stencil-family blocks: row r of a grid×grid array lives on node
// r*N/grid, and multigrid level l occupies a disjoint window shifted
// by l<<shift.
func gridAddr(c *Ctx, row, col, grid, level int, shift uint, elemBytes uint64) uint64 {
	owner := row * c.N / grid
	return machine.AddrAt(owner, uint64(level)<<shift+uint64(row*grid+col)*elemBytes)
}

// ---------------------------------------------------------------------------
// Primitive blocks
// ---------------------------------------------------------------------------

// Stride sweeps Count elements of a region linearly, optionally
// wrapping the element index and shifting the start offset (phase
// drift). One item per thread; the loop body is
//
//	Load [Int] [FP] [Store] LoopBranch
//
// at consecutive PCs, which is exactly the legacy fsstencil/pagethrash
// inner-loop shape.
type Stride struct {
	PC     uint32
	Count  int // elements per thread per execution
	Wrap   int // element-index wrap (0 = unbounded)
	Offset int // starting element offset
	IntOps int
	FPOps  int
	Store  bool
	Skew   int // percent extra work on thread 0, linear falloff
	Region Region
}

func (b *Stride) Items(c *Ctx, tid int) []BlockItem {
	return []BlockItem{{A: tid}}
}

func (b *Stride) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	tid := it.A
	n := skewCount(b.Count, b.Skew, tid, c.N)
	for i := 0; i < n; i++ {
		elem := i + b.Offset
		if b.Wrap > 0 {
			elem %= b.Wrap
		}
		a := b.Region.addr(c, tid, elem)
		pc := b.PC
		e.Load(pc, a)
		pc += 4
		if b.IntOps > 0 {
			e.Int(pc, b.IntOps)
			pc += 4
		}
		if b.FPOps > 0 {
			e.FP(pc, b.FPOps)
			pc += 4
		}
		if b.Store {
			e.Store(pc, a)
			pc += 4
		}
		e.LoopBranch(pc, i, n)
	}
}

// Share is the sharing-degree primitive: threads are partitioned into
// groups of Degree consecutive ids; each round a thread stores its own
// slot and loads every group-mate's slot. With slots packed tighter
// than a cache line this is the false-sharing generator; with Degree n
// it is all-to-all exchange.
type Share struct {
	PC     uint32
	Count  int // exchange rounds per execution
	Degree int // sharing group size
	IntOps int
	Slots  Region // slot q of the exchange area = Slots.addr(q, 0)
}

func (b *Share) Items(c *Ctx, tid int) []BlockItem {
	return []BlockItem{{A: tid}}
}

func (b *Share) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	tid := it.A
	deg := b.Degree
	if deg < 1 {
		deg = 1
	}
	base := tid / deg * deg
	var mates []int
	for q := base; q < base+deg && q < c.N; q++ {
		if q != tid {
			mates = append(mates, q)
		}
	}
	own := b.Slots.addr(c, tid, 0)
	loopPC := b.PC + 8 + 4*uint32(deg)
	for u := 0; u < b.Count; u++ {
		e.Store(b.PC, own)
		e.Int(b.PC+4, b.IntOps)
		for j, q := range mates {
			e.Load(b.PC+8+4*uint32(j), b.Slots.addr(c, q, 0))
		}
		e.LoopBranch(loopPC, u, b.Count)
	}
}

// Stencil is one red/black relaxation sweep colour over a
// strip-partitioned grid: each thread relaxes its row strip, reading
// the rows above and below (the halo exchange that makes boundary rows
// remote). Work is chunked RowChunk rows per item so threads
// interleave within a sweep.
type Stencil struct {
	PC       uint32
	Grid     int // grid side length
	Colour   int // red/black colour of this sweep
	Level    int // multigrid level (disjoint address window per level)
	ColStep  int // column sampling step
	FPOps    int
	RowChunk int
	// LevelShift/ElemBytes parameterize gridAddr.
	LevelShift uint
	ElemBytes  uint64
}

func (b *Stencil) Items(c *Ctx, tid int) []BlockItem {
	lo, hi := tid*b.Grid/c.N, (tid+1)*b.Grid/c.N
	chunk := b.RowChunk
	if chunk < 1 {
		chunk = 1
	}
	var items []BlockItem
	for s := lo; s < hi; s += chunk {
		e := s + chunk
		if e > hi {
			e = hi
		}
		items = append(items, BlockItem{A: s, B: e})
	}
	return items
}

func (b *Stencil) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	lo, hi, grid := it.A, it.B, b.Grid
	pc := b.PC
	colStep := b.ColStep
	if colStep < 1 {
		colStep = 1
	}
	// The per-row owner divisions and base offsets are loop-invariant
	// across a row's columns; hoisting them keeps stream generation off
	// the Table II throughput floor. cell(r, col) remains exactly
	// gridAddr(c, r, col, grid, Level, LevelShift, ElemBytes).
	levelOff := uint64(b.Level) << b.LevelShift
	cols := (grid-2)/colStep + 1
	for row := lo; row < hi; row++ {
		up, down := row-1, row+1
		if up < 0 {
			up = 0
		}
		if down > grid-1 {
			down = grid - 1
		}
		rowOwn, rowOff := row*c.N/grid, levelOff+uint64(row*grid)*b.ElemBytes
		upOwn, upOff := up*c.N/grid, levelOff+uint64(up*grid)*b.ElemBytes
		downOwn, downOff := down*c.N/grid, levelOff+uint64(down*grid)*b.ElemBytes
		start := (row + b.Colour) % 2
		for col := start + 1; col < grid-1; col += colStep {
			cb := uint64(col) * b.ElemBytes
			a := machine.AddrAt(rowOwn, rowOff+cb)
			e.Load(pc+0, a)
			e.Load(pc+4, machine.AddrAt(upOwn, upOff+cb))
			e.Load(pc+8, machine.AddrAt(downOwn, downOff+cb))
			e.FP(pc+12, b.FPOps)
			e.Store(pc+16, a)
			e.LoopBranch(pc+20, col/colStep, cols)
		}
		e.LoopBranch(pc+24, row-lo, hi-lo)
	}
}

// Reduction sweeps each thread's strip of a shared, strip-partitioned
// array and then read-modify-writes a single global accumulator —
// the serialization hotspot that gives reduction phases their
// distinctive home-concentration signature.
type Reduction struct {
	PC    uint32
	Elems int // total elements, strip-partitioned across threads
	FPOps int
	// Element e of the swept array lives at
	// AddrAt(e*N/Elems, Base + e*ElemBytes).
	Base      uint64
	ElemBytes uint64
	// Accum places the shared accumulator (element 0 of the region).
	Accum Region
}

func (b *Reduction) Items(c *Ctx, tid int) []BlockItem {
	return []BlockItem{{A: tid * b.Elems / c.N, B: (tid + 1) * b.Elems / c.N}}
}

func (b *Reduction) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	lo, hi := it.A, it.B
	pc := b.PC
	for el := lo; el < hi; el++ {
		owner := el * c.N / b.Elems
		e.Load(pc+0, machine.AddrAt(owner, b.Base+uint64(el)*b.ElemBytes))
		e.FP(pc+4, b.FPOps)
		e.LoopBranch(pc+8, el-lo, hi-lo)
	}
	accum := b.Accum.addr(c, 0, 0)
	e.Load(pc+12, accum)
	e.FP(pc+16, b.FPOps)
	e.Store(pc+20, accum)
}

// Restrict is the multigrid projection companion of Stencil: each
// thread projects its strip of the fine grid onto the next-coarser
// level's window.
type Restrict struct {
	PC         uint32
	Grid       int // fine grid side; the coarse side is Grid/2
	Level      int // fine level; writes land on Level+1
	ColStep    int
	FPOps      int
	LevelShift uint
	ElemBytes  uint64
}

func (b *Restrict) Items(c *Ctx, tid int) []BlockItem {
	lo, hi := tid*b.Grid/c.N, (tid+1)*b.Grid/c.N
	return []BlockItem{{A: lo / 2, B: hi / 2}}
}

func (b *Restrict) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	lo, hi := it.A, it.B
	pc := b.PC
	coarse := b.Grid / 2
	colStep := b.ColStep
	if colStep < 1 {
		colStep = 1
	}
	if hi > coarse {
		hi = coarse
	}
	for row := lo; row < hi; row++ {
		for col := 0; col < coarse; col += colStep {
			e.Load(pc+0, gridAddr(c, row*2, col*2, b.Grid, b.Level, b.LevelShift, b.ElemBytes))
			e.Load(pc+4, gridAddr(c, row*2+1, col*2, b.Grid, b.Level, b.LevelShift, b.ElemBytes))
			e.FP(pc+8, b.FPOps)
			e.Store(pc+12, gridAddr(c, row, col, coarse, b.Level+1, b.LevelShift, b.ElemBytes))
			e.LoopBranch(pc+16, col/colStep, coarse/colStep)
		}
		e.LoopBranch(pc+20, row-lo, hi-lo)
	}
}

// TreeChase is the irregular primitive: seeded pointer-chasing
// descents through a tree whose nodes are hash-distributed across all
// homes. Each walk starts at the root and follows Depth seeded child
// links; Store updates the reached node (tree build), Skew models the
// load imbalance of irregular domain decomposition. Walks is the total
// across all threads, divided evenly (before skew).
type TreeChase struct {
	PC     uint32
	Walks  int // total descents across all threads
	Depth  int
	Fanout int
	Nodes  int // tree size; node k lives on node k mod N
	IntOps int
	FPOps  int
	Store  bool
	Skew   int
	Chunk  int    // walks per work item
	Salt   uint64 // phase-instance discriminator for the seeded paths
	// NodeBytes/Base place the node pool on each home.
	NodeBytes uint64
	Base      uint64
}

func (b *TreeChase) Items(c *Ctx, tid int) []BlockItem {
	walks := skewCount(b.Walks/c.N, b.Skew, tid, c.N)
	chunk := b.Chunk
	if chunk < 1 {
		chunk = walks
	}
	var items []BlockItem
	for s := 0; s < walks; s += chunk {
		e := s + chunk
		if e > walks {
			e = walks
		}
		items = append(items, BlockItem{A: tid, B: s, C: e})
	}
	return items
}

func (b *TreeChase) nodeAddr(c *Ctx, node int) uint64 {
	return machine.AddrAt(node%c.N, b.Base+uint64(node)*b.NodeBytes)
}

func (b *TreeChase) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	tid, lo, hi := it.A, it.B, it.C
	pc := b.PC
	fan := b.Fanout
	if fan < 2 {
		fan = 2
	}
	for w := lo; w < hi; w++ {
		node := 0
		for lvl := 0; lvl < b.Depth; lvl++ {
			e.Load(pc+0, b.nodeAddr(c, node))
			if b.IntOps > 0 {
				e.Int(pc+4, b.IntOps)
			}
			if b.FPOps > 0 {
				e.FP(pc+8, b.FPOps)
			}
			choice := rng.Hash64(c.Seed ^ b.Salt ^ uint64(tid)<<40 ^ uint64(w)<<8 ^ uint64(lvl))
			node = (node*fan + 1 + int(choice%uint64(fan))) % b.Nodes
			e.LoopBranch(pc+12, lvl, b.Depth)
		}
		if b.Store {
			e.Store(pc+16, b.nodeAddr(c, node))
		}
		e.LoopBranch(pc+20, w-lo, hi-lo)
	}
}

// Broadcast is the all-to-all read primitive: each thread reads Elems
// elements from every peer's window of the region (n-body force
// evaluation against remotely-owned positions). One item per peer, so
// peers interleave with other threads' progress.
type Broadcast struct {
	PC          uint32
	Elems       int // elements read per peer
	IntOps      int
	FPOps       int
	IncludeSelf bool
	Region      Region // peer q's window = Region.addr(q, e)
}

func (b *Broadcast) Items(c *Ctx, tid int) []BlockItem {
	var items []BlockItem
	for q := 0; q < c.N; q++ {
		if q == tid && !b.IncludeSelf {
			continue
		}
		items = append(items, BlockItem{A: tid, B: q})
	}
	return items
}

func (b *Broadcast) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	peer := it.B
	for i := 0; i < b.Elems; i++ {
		pc := b.PC
		e.Load(pc, b.Region.addr(c, peer, i))
		pc += 4
		if b.IntOps > 0 {
			e.Int(pc, b.IntOps)
			pc += 4
		}
		if b.FPOps > 0 {
			e.FP(pc, b.FPOps)
			pc += 4
		}
		e.LoopBranch(pc, i, b.Elems)
	}
}

// Random is the seeded uniform-access primitive: Count accesses spread
// over a Span-element region, every StoreEvery-th access a store. With
// Spread set the accesses scatter across all homes (the pathological
// placement); otherwise they stay within Region.
type Random struct {
	PC         uint32
	Count      int
	Span       int // elements in the target region
	StoreEvery int // every k-th access is a store (0 = loads only)
	IntOps     int
	FPOps      int
	Spread     bool // scatter across all homes instead of Region.Home
	Skew       int
	Salt       uint64
	Region     Region
}

func (b *Random) Items(c *Ctx, tid int) []BlockItem {
	return []BlockItem{{A: tid}}
}

func (b *Random) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	tid := it.A
	n := skewCount(b.Count, b.Skew, tid, c.N)
	span := b.Span
	if span < 1 {
		span = 1
	}
	for i := 0; i < n; i++ {
		h := rng.Hash64(c.Seed ^ b.Salt ^ uint64(tid)<<32 ^ uint64(i))
		elem := int(h % uint64(span))
		var a uint64
		if b.Spread {
			home := int(h>>40) % c.N
			a = machine.AddrAt(home, b.Region.Base+uint64(elem)*b.Region.ElemBytes)
		} else {
			a = b.Region.addr(c, tid, elem)
		}
		pc := b.PC
		if b.StoreEvery > 0 && i%b.StoreEvery == b.StoreEvery-1 {
			e.Store(pc, a)
		} else {
			e.Load(pc, a)
		}
		pc += 4
		if b.IntOps > 0 {
			e.Int(pc, b.IntOps)
			pc += 4
		}
		if b.FPOps > 0 {
			e.FP(pc, b.FPOps)
			pc += 4
		}
		e.LoopBranch(pc, i, n)
	}
}

// Replay is the trace-ingestion primitive: verbatim re-emission of one
// barrier-delimited segment of an externally captured per-processor
// instruction stream. Trace processor tp is assigned to thread
// tp mod N, and memory homes are remapped mod N so a P-processor trace
// replays on any machine size.
type Replay struct {
	// Streams holds one instruction slice per trace processor for this
	// segment.
	Streams [][]isa.Inst
	// Chunk bounds instructions per work item (0 = a default of 4096).
	Chunk int
}

func (b *Replay) Items(c *Ctx, tid int) []BlockItem {
	chunk := b.Chunk
	if chunk < 1 {
		chunk = 4096
	}
	var items []BlockItem
	for tp := tid; tp < len(b.Streams); tp += c.N {
		for s := 0; s < len(b.Streams[tp]); s += chunk {
			e := s + chunk
			if e > len(b.Streams[tp]) {
				e = len(b.Streams[tp])
			}
			items = append(items, BlockItem{A: tp, B: s, C: e})
		}
	}
	return items
}

func (b *Replay) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	for _, in := range b.Streams[it.A][it.B:it.C] {
		if in.Op == isa.OpLoad || in.Op == isa.OpStore {
			home := int(in.Addr >> machine.HomeShift)
			in.Addr = machine.AddrAt(home%c.N, in.Addr&(1<<machine.HomeShift-1))
		}
		e.Append(in)
	}
}
