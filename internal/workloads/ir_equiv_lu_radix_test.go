package workloads

// Stream-equality pins for the lu/radix IR migration, in the style of
// ir_equiv_test.go: the pre-refactor hand-written generators are
// preserved verbatim below (legacy* prefix) and the migrated IR
// generators are required to produce byte-identical per-batch
// instruction streams — batch boundaries included, since the scheduler
// interleaves threads at batch granularity.

import (
	"testing"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
)

// --- legacy lu (pre-IR), verbatim ------------------------------------------

const (
	legacyLUFact = iota
	legacyLUSolveRow
	legacyLUSolveCol
	legacyLUUpdate
)

type legacyLURun struct {
	n, G, B int
	pr, pc  int
	depth   int
}

func (r *legacyLURun) owner(bi, bj int) int {
	return (bi%r.pr)*r.pc + (bj % r.pc)
}

func (r *legacyLURun) blockAddr(bi, bj int) uint64 {
	bid := uint64(bi*r.G + bj)
	blockBytes := uint64(r.B * r.B * 8)
	return machine.AddrAt(r.owner(bi, bj), bid*blockBytes)
}

func (r *legacyLURun) off(i, j int) uint64 {
	return uint64(i*r.B+j) * 8
}

func legacyLUThreads(n int, sz Size) []isa.Thread {
	p := LU{}.params(sz)
	G := p.N / p.B
	pr, pc := procGrid(n)
	run := &legacyLURun{n: n, G: G, B: p.B, pr: pr, pc: pc, depth: max(2, p.B/4)}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for k := 0; k < G; k++ {
			if run.owner(k, k) == tid {
				items = append(items, item{kind: legacyLUFact, a: k})
			}
			items = append(items, item{kind: kindBarrier})
			for j := k + 1; j < G; j++ {
				if run.owner(k, j) == tid {
					items = append(items, item{kind: legacyLUSolveRow, a: k, b: j})
				}
			}
			for i := k + 1; i < G; i++ {
				if run.owner(i, k) == tid {
					items = append(items, item{kind: legacyLUSolveCol, a: k, b: i})
				}
			}
			items = append(items, item{kind: kindBarrier})
			for i := k + 1; i < G; i++ {
				for j := k + 1; j < G; j++ {
					if run.owner(i, j) == tid {
						items = append(items, item{kind: legacyLUUpdate, a: i, b: j, c: k})
					}
				}
			}
			items = append(items, item{kind: kindBarrier})
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcLU + 0xF00}
	}
	return out
}

func (r *legacyLURun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case legacyLUFact:
		r.emitFact(e, it.a)
	case legacyLUSolveRow:
		r.emitSolve(e, it.a, it.a, it.b, pcLU+0x100)
	case legacyLUSolveCol:
		r.emitSolve(e, it.a, it.b, it.a, pcLU+0x200)
	case legacyLUUpdate:
		r.emitUpdate(e, it.a, it.b, it.c)
	default:
		panic("legacy lu: unknown work item")
	}
}

func (r *legacyLURun) emitFact(e *isa.Emitter, k int) {
	const pc = pcLU + 0x000
	blk := r.blockAddr(k, k)
	for j := 0; j < r.B; j++ {
		for i := j; i < r.B; i++ {
			e.Load(pc+0, blk+r.off(i, j))
			e.Load(pc+4, blk+r.off(j, j))
			e.FP(pc+8, 2)
			e.Store(pc+12, blk+r.off(i, j))
			e.LoopBranch(pc+16, i-j, r.B-j)
		}
		e.LoopBranch(pc+20, j, r.B)
	}
}

func (r *legacyLURun) emitSolve(e *isa.Emitter, k, bi, bj int, pc uint32) {
	diag := r.blockAddr(k, k)
	tgt := r.blockAddr(bi, bj)
	for j := 0; j < r.B; j++ {
		for i := 0; i < r.B; i++ {
			e.Load(pc+0, diag+r.off(j, j))
			e.Load(pc+4, tgt+r.off(i, j))
			e.FP(pc+8, 2)
			e.Store(pc+12, tgt+r.off(i, j))
			e.LoopBranch(pc+16, i, r.B)
		}
		e.LoopBranch(pc+20, j, r.B)
	}
}

func (r *legacyLURun) emitUpdate(e *isa.Emitter, i, j, k int) {
	const pc = pcLU + 0x300
	a := r.blockAddr(i, k)
	b := r.blockAddr(k, j)
	tgt := r.blockAddr(i, j)
	for jj := 0; jj < r.B; jj++ {
		for ii := 0; ii < r.B; ii++ {
			for kk := 0; kk < r.depth; kk++ {
				e.Load(pc+0, a+r.off(ii, kk*r.B/r.depth))
				e.Load(pc+4, b+r.off(kk*r.B/r.depth, jj))
				e.FP(pc+8, 2)
				e.LoopBranch(pc+12, kk, r.depth)
			}
			e.Load(pc+16, tgt+r.off(ii, jj))
			e.FP(pc+20, 1)
			e.Store(pc+24, tgt+r.off(ii, jj))
			e.LoopBranch(pc+28, ii, r.B)
		}
		e.LoopBranch(pc+32, jj, r.B)
	}
}

// --- legacy radix (pre-IR), verbatim ---------------------------------------

const (
	legacyRadixHist = iota
	legacyRadixScan
	legacyRadixPermute
)

type legacyRadixRun struct {
	n    int
	p    radixParams
	seed uint64
}

func (r *legacyRadixRun) keyAddr(owner int, k int) uint64 {
	return machine.AddrAt(owner, uint64(k)*8)
}

func (r *legacyRadixRun) histAddr(owner, b int) uint64 {
	return machine.AddrAt(owner, 1<<28|uint64(b)*8)
}

func (r *legacyRadixRun) destOwner(tid, k, pass int) int {
	h := rng.Hash64(r.seed ^ uint64(tid)<<40 ^ uint64(k)<<8 ^ uint64(pass))
	spread := r.n >> uint(pass)
	if spread < 1 {
		spread = 1
	}
	return (tid + int(h%uint64(spread))) % r.n
}

func legacyRadixThreads(n int, sz Size, seed uint64) []isa.Thread {
	p := Radix{}.params(sz)
	run := &legacyRadixRun{n: n, p: p, seed: seed}
	perProc := p.Keys / n
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for pass := 0; pass < p.Passes; pass++ {
			for s := 0; s < perProc; s += radixChunk {
				e := s + radixChunk
				if e > perProc {
					e = perProc
				}
				items = append(items, item{kind: legacyRadixHist, a: tid, b: s, c: e})
			}
			items = append(items, item{kind: kindBarrier})
			items = append(items, item{kind: legacyRadixScan, a: tid})
			items = append(items, item{kind: kindBarrier})
			for s := 0; s < perProc; s += radixChunk {
				e := s + radixChunk
				if e > perProc {
					e = perProc
				}
				items = append(items, item{kind: legacyRadixPermute, a: tid, b: s, c: e, d: pass})
			}
			items = append(items, item{kind: kindBarrier})
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcRadix + 0xF00}
	}
	return out
}

func (r *legacyRadixRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case legacyRadixHist:
		r.emitHist(e, it.a, it.b, it.c)
	case legacyRadixScan:
		r.emitScan(e, it.a)
	case legacyRadixPermute:
		r.emitPermute(e, it.a, it.b, it.c, it.d)
	default:
		panic("legacy radix: unknown work item")
	}
}

func (r *legacyRadixRun) emitHist(e *isa.Emitter, tid, lo, hi int) {
	const pc = pcRadix + 0x000
	for k := lo; k < hi; k++ {
		e.Load(pc+0, r.keyAddr(tid, k))
		e.Int(pc+4, 2)
		e.Store(pc+8, r.histAddr(tid, k%r.p.Radix))
		e.LoopBranch(pc+12, k-lo, hi-lo)
	}
}

func (r *legacyRadixRun) emitScan(e *isa.Emitter, tid int) {
	const pc = pcRadix + 0x100
	stride := 16
	for q := 0; q < r.n; q++ {
		for b := 0; b < r.p.Radix; b += stride {
			e.Load(pc+0, r.histAddr(q, b))
			e.Int(pc+4, 1)
			e.LoopBranch(pc+8, b/stride, r.p.Radix/stride)
		}
		e.LoopBranch(pc+12, q, r.n)
	}
	for b := 0; b < r.p.Radix; b += stride {
		e.Store(pc+16, r.histAddr(tid, b))
		e.LoopBranch(pc+20, b/stride, r.p.Radix/stride)
	}
}

func (r *legacyRadixRun) emitPermute(e *isa.Emitter, tid, lo, hi, pass int) {
	const pc = pcRadix + 0x200
	for k := lo; k < hi; k++ {
		e.Load(pc+0, r.keyAddr(tid, k))
		e.Int(pc+4, 2)
		dst := r.destOwner(tid, k, pass)
		e.Store(pc+8, r.keyAddr(dst, k)+1<<27)
		e.LoopBranch(pc+12, k-lo, hi-lo)
	}
}

// --- the equivalence pin ---------------------------------------------------

// TestIRStreamEquivalenceLURadix pins that the IR-migrated lu and radix
// generators emit byte-identical per-batch streams to their pre-refactor
// emitters, across processor counts, sizes and (for the seed-dependent
// radix permutation) seeds.
func TestIRStreamEquivalenceLURadix(t *testing.T) {
	cases := []struct {
		name   string
		legacy func(n int, sz Size, seed uint64) []isa.Thread
		sizes  []Size
	}{
		{"lu", func(n int, sz Size, _ uint64) []isa.Thread { return legacyLUThreads(n, sz) },
			[]Size{SizeTest, SizeSmall}},
		{"radix", legacyRadixThreads, []Size{SizeTest, SizeSmall}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			for _, sz := range tc.sizes {
				ns := []int{1, 2, 3, 4, 8}
				seeds := []uint64{1, 7}
				if sz != SizeTest {
					ns = []int{4} // keep larger inputs to one geometry
					seeds = []uint64{1}
				}
				for _, n := range ns {
					for _, seed := range seeds {
						legacy := tc.legacy(n, sz, seed)
						ir := w.Threads(n, sz, seed)
						for tid := 0; tid < n; tid++ {
							assertSameBatches(t, tc.name, n, tid,
								drainBatches(t, legacy[tid]), drainBatches(t, ir[tid]))
						}
					}
				}
			}
		})
	}
}
