package workloads

// Stream-equality pins for the IR migration: fsstencil, pagethrash and
// ocean were hand-written emitters before the phased access-pattern IR
// existed; their pre-refactor implementations are preserved verbatim
// below (legacy* prefix) and every migrated generator is required to
// produce a byte-identical per-batch instruction stream. Batch
// boundaries matter, not just the concatenated stream: the scheduler
// interleaves threads at batch granularity, so a migration that merely
// concatenated identically could still change simulation results.

import (
	"testing"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
)

// --- legacy fsstencil (pre-IR), verbatim -----------------------------------

const (
	legacyFSCompute = iota
	legacyFSCommunicate
)

type legacyFSRun struct {
	n int
	p fsstencilParams
}

func (r *legacyFSRun) sharedWordAddr(tid int) uint64 {
	line := uint64(tid / fsWordsPerLine)
	word := uint64(tid % fsWordsPerLine)
	return machine.AddrAt(0, line*32+word*8)
}

func (r *legacyFSRun) privAddr(tid, i int) uint64 {
	return machine.AddrAt(tid, 1<<24|uint64(i)*8)
}

func (r *legacyFSRun) lineMates(tid int) []int {
	base := tid / fsWordsPerLine * fsWordsPerLine
	var out []int
	for q := base; q < base+fsWordsPerLine && q < r.n; q++ {
		if q != tid {
			out = append(out, q)
		}
	}
	return out
}

func legacyFSThreads(n int, sz Size) []isa.Thread {
	p := FSStencil{}.params(sz)
	run := &legacyFSRun{n: n, p: p}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for it := 0; it < p.Iters; it++ {
			items = append(items, item{kind: legacyFSCompute, a: tid, b: it})
			items = append(items, item{kind: kindBarrier})
			items = append(items, item{kind: legacyFSCommunicate, a: tid})
			items = append(items, item{kind: kindBarrier})
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcFSStencil + 0xF00}
	}
	return out
}

func (r *legacyFSRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case legacyFSCompute:
		const pc = pcFSStencil + 0x000
		for i := 0; i < r.p.Compute; i++ {
			e.Load(pc+0, r.privAddr(it.a, (i+it.b)%1024))
			e.Int(pc+4, 2)
			e.Store(pc+8, r.privAddr(it.a, (i+it.b)%1024))
			e.LoopBranch(pc+12, i, r.p.Compute)
		}
	case legacyFSCommunicate:
		const pc = pcFSStencil + 0x100
		mates := r.lineMates(it.a)
		for u := 0; u < r.p.Updates; u++ {
			e.Store(pc+0, r.sharedWordAddr(it.a))
			e.Int(pc+4, 1)
			for j, q := range mates {
				e.Load(pc+8+uint32(j)*4, r.sharedWordAddr(q))
			}
			e.LoopBranch(pc+24, u, r.p.Updates)
		}
	}
}

// --- legacy pagethrash (pre-IR), verbatim ----------------------------------

const (
	legacyPTCompute = iota
	legacyPTShared
)

type legacyPTRun struct {
	n int
	p pagethrashParams
}

func (r *legacyPTRun) sharedLineAddr(tid int) uint64 {
	return machine.AddrAt(0, uint64(tid)*32%ptPageBytes)
}

func (r *legacyPTRun) privAddr(tid, i int) uint64 {
	return machine.AddrAt(tid, 1<<24|uint64(i)*8)
}

func legacyPTThreads(n int, sz Size) []isa.Thread {
	p := PageThrash{}.params(sz)
	run := &legacyPTRun{n: n, p: p}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for it := 0; it < p.Iters; it++ {
			items = append(items, item{kind: legacyPTCompute, a: tid, b: it})
			items = append(items, item{kind: kindBarrier})
			items = append(items, item{kind: legacyPTShared, a: tid})
			items = append(items, item{kind: kindBarrier})
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcPageThrash + 0xF00}
	}
	return out
}

func (r *legacyPTRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case legacyPTCompute:
		const pc = pcPageThrash + 0x000
		for i := 0; i < r.p.Compute; i++ {
			e.Load(pc+0, r.privAddr(it.a, (i+it.b)%1024))
			e.Int(pc+4, 2)
			e.Store(pc+8, r.privAddr(it.a, (i+it.b)%1024))
			e.LoopBranch(pc+12, i, r.p.Compute)
		}
	case legacyPTShared:
		const pc = pcPageThrash + 0x100
		for u := 0; u < r.p.Writes; u++ {
			e.Load(pc+0, r.sharedLineAddr(it.a))
			e.Int(pc+4, 1)
			e.Store(pc+8, r.sharedLineAddr(it.a))
			e.LoopBranch(pc+12, u, r.p.Writes)
		}
	}
}

// --- legacy ocean (pre-IR), verbatim ---------------------------------------

const (
	legacyOceanRelax = iota
	legacyOceanReduce
	legacyOceanRestrict
)

type legacyOceanRun struct {
	n int
	p oceanParams
}

func (r *legacyOceanRun) rowOwner(row, grid int) int {
	return row * r.n / grid
}

func (r *legacyOceanRun) cellAddr(row, col, grid, level int) uint64 {
	base := uint64(level) << 27
	return machine.AddrAt(r.rowOwner(row, grid), base+uint64(row*grid+col)*8)
}

func (r *legacyOceanRun) accumAddr() uint64 {
	return machine.AddrAt(0, 1<<30)
}

func legacyOceanThreads(n int, sz Size) []isa.Thread {
	p := Ocean{}.params(sz)
	run := &legacyOceanRun{n: n, p: p}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		grid := p.Grid
		level := 0
		for ts := 0; ts < p.Steps; ts++ {
			lo := tid * grid / n
			hi := (tid + 1) * grid / n
			for _, colour := range []int{0, 1} {
				for s := lo; s < hi; s += oceanChunk {
					e := s + oceanChunk
					if e > hi {
						e = hi
					}
					items = append(items, item{kind: legacyOceanRelax, a: s, b: e, c: colour | level<<1, d: grid})
				}
				items = append(items, item{kind: kindBarrier})
			}
			items = append(items, item{kind: legacyOceanReduce, a: lo, b: hi, d: grid, c: level})
			items = append(items, item{kind: kindBarrier})
			if ts%3 == 2 && grid > 32 {
				items = append(items, item{kind: legacyOceanRestrict, a: lo / 2, b: hi / 2, c: level, d: grid})
				items = append(items, item{kind: kindBarrier})
				grid = grid / 2
				level++
			} else if level > 0 {
				grid = p.Grid
				level = 0
			}
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcOcean + 0xF00}
	}
	return out
}

func (r *legacyOceanRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case legacyOceanRelax:
		r.emitRelax(e, it.a, it.b, it.c&1, it.c>>1, it.d)
	case legacyOceanReduce:
		r.emitReduce(e, it.a, it.b, it.c, it.d)
	case legacyOceanRestrict:
		r.emitRestrict(e, it.a, it.b, it.c, it.d)
	}
}

func (r *legacyOceanRun) emitRelax(e *isa.Emitter, lo, hi, colour, level, grid int) {
	pc := uint32(pcOcean + 0x000 + 0x40*colour)
	colStep := 4
	for row := lo; row < hi; row++ {
		start := (row + colour) % 2
		for col := start + 1; col < grid-1; col += colStep {
			e.Load(pc+0, r.cellAddr(row, col, grid, level))
			up := row - 1
			if up < 0 {
				up = 0
			}
			down := row + 1
			if down >= grid {
				down = grid - 1
			}
			e.Load(pc+4, r.cellAddr(up, col, grid, level))
			e.Load(pc+8, r.cellAddr(down, col, grid, level))
			e.FP(pc+12, 3)
			e.Store(pc+16, r.cellAddr(row, col, grid, level))
			e.LoopBranch(pc+20, col/colStep, (grid-2)/colStep+1)
		}
		e.LoopBranch(pc+24, row-lo, hi-lo)
	}
}

func (r *legacyOceanRun) emitReduce(e *isa.Emitter, lo, hi, level, grid int) {
	const pc = pcOcean + 0x100
	for row := lo; row < hi; row++ {
		e.Load(pc+0, r.cellAddr(row, grid/2, grid, level))
		e.FP(pc+4, 1)
		e.LoopBranch(pc+8, row-lo, hi-lo)
	}
	e.Load(pc+12, r.accumAddr())
	e.FP(pc+16, 1)
	e.Store(pc+20, r.accumAddr())
}

func (r *legacyOceanRun) emitRestrict(e *isa.Emitter, lo, hi, level, grid int) {
	const pc = pcOcean + 0x200
	coarse := grid / 2
	for row := lo; row < hi && row < coarse; row++ {
		for col := 0; col < coarse; col += 4 {
			e.Load(pc+0, r.cellAddr(row*2, col*2, grid, level))
			e.Load(pc+4, r.cellAddr(row*2+1, col*2, grid, level))
			e.FP(pc+8, 2)
			e.Store(pc+12, r.cellAddr(row, col, coarse, level+1))
			e.LoopBranch(pc+16, col/4, coarse/4)
		}
		e.LoopBranch(pc+20, row-lo, hi-lo)
	}
}

// --- the equivalence pin ---------------------------------------------------

// drainBatches runs a thread to completion preserving batch boundaries.
func drainBatches(t *testing.T, th isa.Thread) [][]isa.Inst {
	t.Helper()
	var out [][]isa.Inst
	e := isa.NewEmitter(4096)
	total := 0
	for {
		e.Reset()
		if !th.NextBatch(e) {
			return out
		}
		batch := append([]isa.Inst(nil), e.Take()...)
		out = append(out, batch)
		if total += len(batch); total > 100_000_000 {
			t.Fatal("thread exceeded 100M instructions")
		}
	}
}

func assertSameBatches(t *testing.T, name string, n, tid int, legacy, ir [][]isa.Inst) {
	t.Helper()
	if len(legacy) != len(ir) {
		t.Fatalf("%s n=%d tid=%d: %d legacy batches vs %d IR batches", name, n, tid, len(legacy), len(ir))
	}
	for bi := range legacy {
		if len(legacy[bi]) != len(ir[bi]) {
			t.Fatalf("%s n=%d tid=%d batch %d: %d legacy insts vs %d IR insts",
				name, n, tid, bi, len(legacy[bi]), len(ir[bi]))
		}
		for ii := range legacy[bi] {
			if legacy[bi][ii] != ir[bi][ii] {
				t.Fatalf("%s n=%d tid=%d batch %d inst %d: legacy %+v vs IR %+v",
					name, n, tid, bi, ii, legacy[bi][ii], ir[bi][ii])
			}
		}
	}
}

// TestIRStreamEquivalence pins that the IR-migrated generators emit
// byte-identical per-batch streams to their pre-refactor emitters —
// the property that keeps every golden, shard fingerprint and served
// report unchanged across the refactor.
func TestIRStreamEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		legacy func(n int, sz Size) []isa.Thread
		sizes  []Size
	}{
		{"fsstencil", legacyFSThreads, []Size{SizeTest, SizeSmall, SizeFull}},
		{"pagethrash", legacyPTThreads, []Size{SizeTest, SizeSmall, SizeFull}},
		{"ocean", legacyOceanThreads, []Size{SizeTest, SizeSmall}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			for _, sz := range tc.sizes {
				ns := []int{1, 2, 3, 4, 8}
				if sz != SizeTest {
					ns = []int{4} // keep larger inputs to one geometry
				}
				for _, n := range ns {
					legacy := tc.legacy(n, sz)
					ir := w.Threads(n, sz, 1)
					for tid := 0; tid < n; tid++ {
						assertSameBatches(t, tc.name, n, tid,
							drainBatches(t, legacy[tid]), drainBatches(t, ir[tid]))
					}
				}
			}
		})
	}
}
