package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
)

// LU models SPLASH-2 LU: blocked dense LU factorization of an N×N matrix
// with B×B blocks (Table II: 512×512, 16×16). Blocks are 2-D scattered
// across processors; each step k factors the diagonal block, solves the
// perimeter row/column against it, then updates the trailing submatrix,
// with barriers between the three sub-phases.
//
// Phase-detection relevance: the three kernels have distinct basic-block
// signatures, while the *data distribution* of the update kernel shifts
// every step (its sources live in row/column k, whose owners rotate), so
// intervals with near-identical BBVs differ in DDS — the paper's central
// scenario. The shrinking trailing matrix also shrinks per-step work,
// increasing barrier-wait share over time.
type LU struct{}

func init() { Register(LU{}) }

// Name implements Workload.
func (LU) Name() string { return "lu" }

// Description implements Workload.
func (LU) Description() string {
	return "SPLASH-2 blocked dense LU factorization (factor/solve/update pipeline, 2-D block scatter)"
}

type luParams struct {
	N, B int
}

func (LU) params(sz Size) luParams {
	switch sz {
	case SizeTest:
		return luParams{N: 128, B: 8}
	case SizeSmall:
		return luParams{N: 256, B: 16}
	default:
		return luParams{N: 512, B: 16} // the paper's input
	}
}

// InputSet implements Workload.
func (w LU) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d×%d matrix, %d×%d block", p.N, p.N, p.B, p.B)
}

// LU static PC space.
const pcLU = 0x1000_0000

type luRun struct {
	n, G, B int
	pr, pc  int
	depth   int
}

// owner returns the 2-D scatter owner of block (bi, bj).
func (r *luRun) owner(bi, bj int) int {
	return (bi%r.pr)*r.pc + (bj % r.pc)
}

// blockAddr returns the base byte address of block (bi, bj), homed at its
// owner's node.
func (r *luRun) blockAddr(bi, bj int) uint64 {
	bid := uint64(bi*r.G + bj)
	blockBytes := uint64(r.B * r.B * 8)
	return machine.AddrAt(r.owner(bi, bj), bid*blockBytes)
}

// off returns the byte offset of element (i, j) within a block.
func (r *luRun) off(i, j int) uint64 {
	return uint64(i*r.B+j) * 8
}

// procGrid factors n into pr×pc with pr >= pc, both powers of two.
func procGrid(n int) (pr, pc int) {
	pr, pc = 1, 1
	for pr*pc < n {
		if pr <= pc {
			pr *= 2
		} else {
			pc *= 2
		}
	}
	return pr, pc
}

// LU over the IR: the three kernels of factorization step k become
// three barrier-closed phases. Ownership is irregular — a block emits
// items only on the thread that owns the matrix block — so LU keeps
// workload-specific Block implementations (like barnes) instead of
// composing the generic primitives. Each BlockItem is one kernel
// invocation, exactly the batch structure the pre-IR emitter produced
// (pinned by TestIRStreamEquivalenceLURadix).

// luFactB is step k's diagonal-block factorization: one item, on the
// diagonal block's owner only.
type luFactB struct {
	r *luRun
	k int
}

func (b *luFactB) Items(c *Ctx, tid int) []BlockItem {
	if b.r.owner(b.k, b.k) == tid {
		return []BlockItem{{A: b.k}}
	}
	return nil
}

func (b *luFactB) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	b.r.emitFact(e, it.A)
}

// luSolveB is step k's perimeter solve: one item per owned row block
// (C=0), then one per owned column block (C=1), in block order.
type luSolveB struct {
	r *luRun
	k int
}

func (b *luSolveB) Items(c *Ctx, tid int) []BlockItem {
	var items []BlockItem
	for j := b.k + 1; j < b.r.G; j++ {
		if b.r.owner(b.k, j) == tid {
			items = append(items, BlockItem{A: b.k, B: j})
		}
	}
	for i := b.k + 1; i < b.r.G; i++ {
		if b.r.owner(i, b.k) == tid {
			items = append(items, BlockItem{A: b.k, B: i, C: 1})
		}
	}
	return items
}

func (b *luSolveB) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	if it.C == 0 {
		b.r.emitSolve(e, it.A, it.A, it.B, pcLU+0x100)
	} else {
		b.r.emitSolve(e, it.A, it.B, it.A, pcLU+0x200)
	}
}

// luUpdateB is step k's trailing-submatrix update: one item per owned
// trailing block.
type luUpdateB struct {
	r *luRun
	k int
}

func (b *luUpdateB) Items(c *Ctx, tid int) []BlockItem {
	var items []BlockItem
	for i := b.k + 1; i < b.r.G; i++ {
		for j := b.k + 1; j < b.r.G; j++ {
			if b.r.owner(i, j) == tid {
				items = append(items, BlockItem{A: i, B: j, C: b.k})
			}
		}
	}
	return items
}

func (b *luUpdateB) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	b.r.emitUpdate(e, it.A, it.B, it.C)
}

// Threads implements Workload.
func (w LU) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	G := p.N / p.B
	pr, pc := procGrid(n)
	run := &luRun{n: n, G: G, B: p.B, pr: pr, pc: pc, depth: max(2, p.B/4)}
	prog := &Program{BarrierPC: pcLU + 0xF00}
	for k := 0; k < G; k++ {
		prog.Phases = append(prog.Phases,
			Phase{Blocks: []Block{&luFactB{r: run, k: k}}},
			Phase{Blocks: []Block{&luSolveB{r: run, k: k}}},
			Phase{Blocks: []Block{&luUpdateB{r: run, k: k}}},
		)
	}
	return prog.Threads(n, seed)
}

// emitFact models the diagonal-block factorization: column sweeps over
// the owner's own block (all-local accesses, FP-heavy, short loops).
func (r *luRun) emitFact(e *isa.Emitter, k int) {
	const pc = pcLU + 0x000
	blk := r.blockAddr(k, k)
	for j := 0; j < r.B; j++ {
		for i := j; i < r.B; i++ {
			e.Load(pc+0, blk+r.off(i, j))
			e.Load(pc+4, blk+r.off(j, j))
			e.FP(pc+8, 2)
			e.Store(pc+12, blk+r.off(i, j))
			e.LoopBranch(pc+16, i-j, r.B-j)
		}
		e.LoopBranch(pc+20, j, r.B)
	}
}

// emitSolve models a perimeter triangular solve: the target block is
// updated against the (possibly remote) diagonal block.
func (r *luRun) emitSolve(e *isa.Emitter, k, bi, bj int, pc uint32) {
	diag := r.blockAddr(k, k)
	tgt := r.blockAddr(bi, bj)
	for j := 0; j < r.B; j++ {
		for i := 0; i < r.B; i++ {
			e.Load(pc+0, diag+r.off(j, j))
			e.Load(pc+4, tgt+r.off(i, j))
			e.FP(pc+8, 2)
			e.Store(pc+12, tgt+r.off(i, j))
			e.LoopBranch(pc+16, i, r.B)
		}
		e.LoopBranch(pc+20, j, r.B)
	}
}

// emitUpdate models the trailing-submatrix update
// A[i][j] -= A[i][k] · A[k][j]: the two source blocks live in row/column
// k (typically remote), the target is local to the owner. The inner dot
// product is depth-sampled to keep per-block instruction counts at
// B²·depth scale while preserving the B³ work ratio between sizes.
func (r *luRun) emitUpdate(e *isa.Emitter, i, j, k int) {
	const pc = pcLU + 0x300
	a := r.blockAddr(i, k)
	b := r.blockAddr(k, j)
	tgt := r.blockAddr(i, j)
	for jj := 0; jj < r.B; jj++ {
		for ii := 0; ii < r.B; ii++ {
			for kk := 0; kk < r.depth; kk++ {
				e.Load(pc+0, a+r.off(ii, kk*r.B/r.depth))
				e.Load(pc+4, b+r.off(kk*r.B/r.depth, jj))
				e.FP(pc+8, 2)
				e.LoopBranch(pc+12, kk, r.depth)
			}
			e.Load(pc+16, tgt+r.off(ii, jj))
			e.FP(pc+20, 1)
			e.Store(pc+24, tgt+r.off(ii, jj))
			e.LoopBranch(pc+28, ii, r.B)
		}
		e.LoopBranch(pc+32, jj, r.B)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
