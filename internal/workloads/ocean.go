package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
)

// Ocean models SPLASH-2 Ocean (extension beyond the paper's Table II):
// a red-black Gauss-Seidel relaxation over a 2-D grid partitioned into
// horizontal strips, with a residual reduction against a global
// accumulator and a periodic multigrid restriction step that shrinks
// the working grid.
//
// Phase-detection relevance: relaxation sweeps touch only the strip's
// interior except for the halo rows owned by neighbouring processors
// (nearest-neighbour remote traffic — a different distribution signature
// from LU's row/column broadcasts or Art's all-to-all), the reduction
// phase serializes on one home (contention spike), and the multigrid
// step halves the work periodically (temporal phase change).
//
// Expressed over the IR as the stencil family — Stencil sweeps per
// colour, a Reduction over the strip's residual column, and a Restrict
// projection every third step; byte-identical to the pre-IR emitter
// (pinned by TestIRStreamEquivalence).
type Ocean struct{}

func init() { Register(Ocean{}) }

// Name implements Workload.
func (Ocean) Name() string { return "ocean" }

// Description implements Workload.
func (Ocean) Description() string {
	return "SPLASH-2 Ocean extension (red-black relaxation strips, halo exchange, reduction, multigrid)"
}

type oceanParams struct {
	Grid  int // grid side
	Steps int
}

func (Ocean) params(sz Size) oceanParams {
	switch sz {
	case SizeTest:
		return oceanParams{Grid: 128, Steps: 6}
	case SizeSmall:
		return oceanParams{Grid: 256, Steps: 10}
	default:
		return oceanParams{Grid: 512, Steps: 14}
	}
}

// InputSet implements Workload.
func (w Ocean) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d×%d grid, %d timesteps", p.Grid, p.Grid, p.Steps)
}

const pcOcean = 0x5000_0000

// oceanChunk is the number of grid rows per work item.
const oceanChunk = 8

// oceanLevelShift positions each multigrid level in a disjoint window
// of the owner's memory.
const oceanLevelShift = 27

// program builds the IR form. The grid/level trajectory (multigrid
// restriction every third step, reset to the fine grid after) is the
// phase sequence; each timestep contributes a red sweep, a black sweep,
// a reduction and optionally a restriction, every one barrier-closed.
func (w Ocean) program(sz Size) *Program {
	p := w.params(sz)
	prog := &Program{BarrierPC: pcOcean + 0xF00}
	grid := p.Grid
	level := 0
	for ts := 0; ts < p.Steps; ts++ {
		for _, colour := range []int{0, 1} { // red sweep, black sweep
			prog.Phases = append(prog.Phases, Phase{Blocks: []Block{&Stencil{
				PC: uint32(pcOcean + 0x000 + 0x40*colour), Grid: grid, Colour: colour,
				Level: level, ColStep: 4, FPOps: 3, RowChunk: oceanChunk,
				LevelShift: oceanLevelShift, ElemBytes: 8,
			}}})
		}
		prog.Phases = append(prog.Phases, Phase{Blocks: []Block{&Reduction{
			PC: pcOcean + 0x100, Elems: grid, FPOps: 1,
			// Element r of the swept array is the strip's residual column:
			// cell (r, grid/2) of the current level's window.
			Base:      uint64(level)<<oceanLevelShift + uint64(grid/2)*8,
			ElemBytes: uint64(grid) * 8,
			Accum:     Region{Home: 0, Base: 1 << 30},
		}}})
		// Multigrid restriction every third step: drop to a coarser grid
		// for the next step, then return to the fine grid.
		if ts%3 == 2 && grid > 32 {
			prog.Phases = append(prog.Phases, Phase{Blocks: []Block{&Restrict{
				PC: pcOcean + 0x200, Grid: grid, Level: level, ColStep: 4, FPOps: 2,
				LevelShift: oceanLevelShift, ElemBytes: 8,
			}}})
			grid = grid / 2
			level++
		} else if level > 0 {
			grid = p.Grid
			level = 0
		}
	}
	return prog
}

// Threads implements Workload.
func (w Ocean) Threads(n int, sz Size, seed uint64) []isa.Thread {
	return w.program(sz).Threads(n, seed)
}
