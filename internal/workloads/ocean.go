package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
)

// Ocean models SPLASH-2 Ocean (extension beyond the paper's Table II):
// a red-black Gauss-Seidel relaxation over a 2-D grid partitioned into
// horizontal strips, with a residual reduction against a global
// accumulator and a periodic multigrid restriction step that shrinks
// the working grid.
//
// Phase-detection relevance: relaxation sweeps touch only the strip's
// interior except for the halo rows owned by neighbouring processors
// (nearest-neighbour remote traffic — a different distribution signature
// from LU's row/column broadcasts or Art's all-to-all), the reduction
// phase serializes on one home (contention spike), and the multigrid
// step halves the work periodically (temporal phase change).
type Ocean struct{}

func init() { Register(Ocean{}) }

// Name implements Workload.
func (Ocean) Name() string { return "ocean" }

// Description implements Workload.
func (Ocean) Description() string {
	return "SPLASH-2 Ocean extension (red-black relaxation strips, halo exchange, reduction, multigrid)"
}

type oceanParams struct {
	Grid  int // grid side
	Steps int
}

func (Ocean) params(sz Size) oceanParams {
	switch sz {
	case SizeTest:
		return oceanParams{Grid: 128, Steps: 6}
	case SizeSmall:
		return oceanParams{Grid: 256, Steps: 10}
	default:
		return oceanParams{Grid: 512, Steps: 14}
	}
}

// InputSet implements Workload.
func (w Ocean) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d×%d grid, %d timesteps", p.Grid, p.Grid, p.Steps)
}

// Ocean kernel kinds.
const (
	oceanRelax = iota
	oceanReduce
	oceanRestrict
)

const pcOcean = 0x5000_0000

// oceanChunk is the number of grid rows per work item.
const oceanChunk = 8

type oceanRun struct {
	n    int
	p    oceanParams
	seed uint64
}

// rowOwner partitions rows into contiguous strips.
func (r *oceanRun) rowOwner(row, grid int) int {
	return row * r.n / grid
}

// cellAddr is the address of grid cell (row, col) at the given multigrid
// level (each level has a disjoint region of the owner's memory).
func (r *oceanRun) cellAddr(row, col, grid, level int) uint64 {
	base := uint64(level) << 27
	return machine.AddrAt(r.rowOwner(row, grid), base+uint64(row*grid+col)*8)
}

// accumAddr is the global residual accumulator (home node 0).
func (r *oceanRun) accumAddr() uint64 {
	return machine.AddrAt(0, 1<<30)
}

// Threads implements Workload.
func (w Ocean) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	run := &oceanRun{n: n, p: p, seed: seed}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		grid := p.Grid
		level := 0
		for ts := 0; ts < p.Steps; ts++ {
			lo := tid * grid / n
			hi := (tid + 1) * grid / n
			for _, colour := range []int{0, 1} { // red sweep, black sweep
				for s := lo; s < hi; s += oceanChunk {
					e := s + oceanChunk
					if e > hi {
						e = hi
					}
					items = append(items, item{kind: oceanRelax, a: s, b: e, c: colour | level<<1, d: grid})
				}
				items = append(items, item{kind: kindBarrier})
			}
			items = append(items, item{kind: oceanReduce, a: lo, b: hi, d: grid, c: level})
			items = append(items, item{kind: kindBarrier})
			// Multigrid restriction every third step: drop to a coarser
			// grid for the next step, then return to the fine grid.
			if ts%3 == 2 && grid > 32 {
				items = append(items, item{kind: oceanRestrict, a: lo / 2, b: hi / 2, c: level, d: grid})
				items = append(items, item{kind: kindBarrier})
				grid = grid / 2
				level++
			} else if level > 0 {
				grid = p.Grid
				level = 0
			}
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcOcean + 0xF00}
	}
	return out
}

func (r *oceanRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case oceanRelax:
		r.emitRelax(e, it.a, it.b, it.c&1, it.c>>1, it.d)
	case oceanReduce:
		r.emitReduce(e, it.a, it.b, it.c, it.d)
	case oceanRestrict:
		r.emitRestrict(e, it.a, it.b, it.c, it.d)
	default:
		panic("ocean: unknown work item")
	}
}

// emitRelax performs a red-black relaxation sweep over rows [lo, hi):
// each updated cell reads its four neighbours; the row above the strip's
// first row and below its last row belong to the neighbouring
// processors (halo traffic). Columns are sampled to bound instruction
// counts while preserving the per-row structure.
func (r *oceanRun) emitRelax(e *isa.Emitter, lo, hi, colour, level, grid int) {
	pc := uint32(pcOcean + 0x000 + 0x40*colour)
	colStep := 4 // sample every 4th column
	for row := lo; row < hi; row++ {
		start := (row + colour) % 2
		for col := start + 1; col < grid-1; col += colStep {
			e.Load(pc+0, r.cellAddr(row, col, grid, level))
			up := row - 1
			if up < 0 {
				up = 0
			}
			down := row + 1
			if down >= grid {
				down = grid - 1
			}
			e.Load(pc+4, r.cellAddr(up, col, grid, level))
			e.Load(pc+8, r.cellAddr(down, col, grid, level))
			e.FP(pc+12, 3)
			e.Store(pc+16, r.cellAddr(row, col, grid, level))
			e.LoopBranch(pc+20, col/colStep, (grid-2)/colStep+1)
		}
		e.LoopBranch(pc+24, row-lo, hi-lo)
	}
}

// emitReduce accumulates the strip's residual into the global
// accumulator homed at node 0 — every processor converges on one line.
func (r *oceanRun) emitReduce(e *isa.Emitter, lo, hi, level, grid int) {
	const pc = pcOcean + 0x100
	for row := lo; row < hi; row++ {
		e.Load(pc+0, r.cellAddr(row, grid/2, grid, level))
		e.FP(pc+4, 1)
		e.LoopBranch(pc+8, row-lo, hi-lo)
	}
	// Read-modify-write of the shared accumulator.
	e.Load(pc+12, r.accumAddr())
	e.FP(pc+16, 1)
	e.Store(pc+20, r.accumAddr())
}

// emitRestrict projects the strip onto the next-coarser grid.
func (r *oceanRun) emitRestrict(e *isa.Emitter, lo, hi, level, grid int) {
	const pc = pcOcean + 0x200
	coarse := grid / 2
	for row := lo; row < hi && row < coarse; row++ {
		for col := 0; col < coarse; col += 4 {
			e.Load(pc+0, r.cellAddr(row*2, col*2, grid, level))
			e.Load(pc+4, r.cellAddr(row*2+1, col*2, grid, level))
			e.FP(pc+8, 2)
			e.Store(pc+12, r.cellAddr(row, col, coarse, level+1))
			e.LoopBranch(pc+16, col/4, coarse/4)
		}
		e.LoopBranch(pc+20, row-lo, hi-lo)
	}
}
