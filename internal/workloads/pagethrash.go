package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
)

// PageThrash is an adversarial microbenchmark (not a Table II
// application): every processor repeatedly writes its OWN 32 B cache
// line inside ONE shared 4 kB page homed at node 0. At line
// granularity the accesses are disjoint — after the cold misses the
// directory protocol holds each line modified at its writer and goes
// quiet. At page granularity the same stream is a write ping-pong over
// a single read-write page: the IVY backend bounces whole-page
// ownership between processors on every round, so its PageFaults and
// PageTransfers grow with iterations × processors while the directory
// backend's Invalidations stay at zero. The mirror image of fsstencil.
//
// Phase structure: each iteration alternates a private compute phase
// with a shared-page write phase, separated by barriers.
type PageThrash struct{}

func init() { Register(PageThrash{}) }

// Name implements Workload.
func (PageThrash) Name() string { return "pagethrash" }

// Description implements Workload.
func (PageThrash) Description() string {
	return "adversarial page thrasher (distinct lines, one shared page)"
}

type pagethrashParams struct {
	Iters   int
	Compute int // private inner ops per iteration
	Writes  int // writes to the shared page per iteration
}

func (PageThrash) params(sz Size) pagethrashParams {
	switch sz {
	case SizeTest:
		return pagethrashParams{Iters: 16, Compute: 512, Writes: 64}
	case SizeSmall:
		return pagethrashParams{Iters: 24, Compute: 512, Writes: 64}
	default:
		return pagethrashParams{Iters: 64, Compute: 1024, Writes: 128}
	}
}

// InputSet implements Workload.
func (w PageThrash) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d iterations, %d writes/page, one 4kB page", p.Iters, p.Writes)
}

// PageThrash kernel kinds.
const (
	ptCompute = iota
	ptShared
)

const pcPageThrash = 0x7100_0000

// ptPageBytes is the shared region size: one IVY page.
const ptPageBytes = 4096

type pagethrashRun struct {
	n int
	p pagethrashParams
}

// sharedLineAddr is processor tid's private 32 B line inside the one
// shared page at home node 0. Lines wrap within the page for n > 128,
// which only makes the workload more adversarial.
func (r *pagethrashRun) sharedLineAddr(tid int) uint64 {
	return machine.AddrAt(0, uint64(tid)*32%ptPageBytes)
}

// privAddr is an address in tid's private region.
func (r *pagethrashRun) privAddr(tid, i int) uint64 {
	return machine.AddrAt(tid, 1<<24|uint64(i)*8)
}

// Threads implements Workload.
func (w PageThrash) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	run := &pagethrashRun{n: n, p: p}
	out := make([]isa.Thread, n)
	for tid := 0; tid < n; tid++ {
		var items []item
		for it := 0; it < p.Iters; it++ {
			items = append(items, item{kind: ptCompute, a: tid, b: it})
			items = append(items, item{kind: kindBarrier})
			items = append(items, item{kind: ptShared, a: tid})
			items = append(items, item{kind: kindBarrier})
		}
		out[tid] = &scriptThread{items: items, emit: run.emit, barrierPC: pcPageThrash + 0xF00}
	}
	return out
}

func (r *pagethrashRun) emit(it item, e *isa.Emitter) {
	switch it.kind {
	case ptCompute:
		r.emitCompute(e, it.a, it.b)
	case ptShared:
		r.emitShared(e, it.a)
	default:
		panic("pagethrash: unknown work item")
	}
}

// emitCompute: private sweep — all traffic stays local.
func (r *pagethrashRun) emitCompute(e *isa.Emitter, tid, iter int) {
	const pc = pcPageThrash + 0x000
	for i := 0; i < r.p.Compute; i++ {
		e.Load(pc+0, r.privAddr(tid, (i+iter)%1024))
		e.Int(pc+4, 2)
		e.Store(pc+8, r.privAddr(tid, (i+iter)%1024))
		e.LoopBranch(pc+12, i, r.p.Compute)
	}
}

// emitShared: hammer the processor's own line of the one shared page —
// disjoint at line granularity, a write ping-pong at page granularity.
func (r *pagethrashRun) emitShared(e *isa.Emitter, tid int) {
	const pc = pcPageThrash + 0x100
	for u := 0; u < r.p.Writes; u++ {
		e.Load(pc+0, r.sharedLineAddr(tid))
		e.Int(pc+4, 1)
		e.Store(pc+8, r.sharedLineAddr(tid))
		e.LoopBranch(pc+12, u, r.p.Writes)
	}
}
