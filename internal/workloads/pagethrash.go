package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
)

// PageThrash is an adversarial microbenchmark (not a Table II
// application): every processor repeatedly writes its OWN 32 B cache
// line inside ONE shared 4 kB page homed at node 0. At line
// granularity the accesses are disjoint — after the cold misses the
// directory protocol holds each line modified at its writer and goes
// quiet. At page granularity the same stream is a write ping-pong over
// a single read-write page: the IVY backend bounces whole-page
// ownership between processors on every round, so its PageFaults and
// PageTransfers grow with iterations × processors while the directory
// backend's Invalidations stay at zero. The mirror image of fsstencil.
//
// Phase structure: each iteration alternates a private compute phase
// with a shared-page write phase, separated by barriers.
//
// Expressed over the IR as two Stride blocks — a private sweep and a
// single-element read-modify-write whose Region packs thread slots 32 B
// apart wrapped within one page; byte-identical to the pre-IR emitter
// (pinned by TestIRStreamEquivalence).
type PageThrash struct{}

func init() { Register(PageThrash{}) }

// Name implements Workload.
func (PageThrash) Name() string { return "pagethrash" }

// Description implements Workload.
func (PageThrash) Description() string {
	return "adversarial page thrasher (distinct lines, one shared page)"
}

type pagethrashParams struct {
	Iters   int
	Compute int // private inner ops per iteration
	Writes  int // writes to the shared page per iteration
}

func (PageThrash) params(sz Size) pagethrashParams {
	switch sz {
	case SizeTest:
		return pagethrashParams{Iters: 16, Compute: 512, Writes: 64}
	case SizeSmall:
		return pagethrashParams{Iters: 24, Compute: 512, Writes: 64}
	default:
		return pagethrashParams{Iters: 64, Compute: 1024, Writes: 128}
	}
}

// InputSet implements Workload.
func (w PageThrash) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d iterations, %d writes/page, one 4kB page", p.Iters, p.Writes)
}

const pcPageThrash = 0x7100_0000

// ptPageBytes is the shared region size: one IVY page. Thread slots are
// 32 B lines wrapped within it, so lines recycle for n > 128 — which
// only makes the workload more adversarial.
const ptPageBytes = 4096

// program builds the IR form: per iteration, a private Stride phase
// then a shared Stride phase hammering the thread's own line of the one
// page (Wrap 1 pins every round to the same element).
func (w PageThrash) program(sz Size) *Program {
	p := w.params(sz)
	prog := &Program{BarrierPC: pcPageThrash + 0xF00}
	for it := 0; it < p.Iters; it++ {
		prog.Phases = append(prog.Phases,
			Phase{Blocks: []Block{&Stride{
				PC: pcPageThrash + 0x000, Count: p.Compute, Wrap: 1024, Offset: it,
				IntOps: 2, Store: true,
				Region: Region{Home: OwnerThread, Base: 1 << 24, ElemBytes: 8},
			}}},
			Phase{Blocks: []Block{&Stride{
				PC: pcPageThrash + 0x100, Count: p.Writes, Wrap: 1,
				IntOps: 1, Store: true,
				Region: Region{Home: 0, SlotBytes: 32, SlotWrap: ptPageBytes},
			}}},
		)
	}
	return prog
}

// Threads implements Workload.
func (w PageThrash) Threads(n int, sz Size, seed uint64) []isa.Thread {
	return w.program(sz).Threads(n, seed)
}
