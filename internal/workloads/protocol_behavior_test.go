package workloads

import (
	"testing"

	"dsmphase/internal/coherence"
	"dsmphase/internal/machine"
)

// The two adversarial workloads are constructed to stress exactly one
// coherence granularity each, and these tests pin the contrast in the
// backends' own metric vocabularies: the directory engine accounts
// line-level Invalidations (and never the Page* counters); the IVY
// backend accounts PageFaults/PageTransfers/PageInvalidations (and
// never line-level Invalidations). Bands are deliberately loose — they
// assert the blowup/quiescence shape, not exact counts.

// runProtocol simulates a workload at SizeTest under the given backend
// and returns the coherence statistics.
func runProtocol(t *testing.T, name string, n int, kind coherence.Kind) coherence.Stats {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig(n)
	cfg.Protocol = kind
	m := machine.New(cfg, w.Threads(n, SizeTest, 1))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.Protocol().CheckInvariants(); err != nil {
		t.Error(err)
	}
	return m.Protocol().Stats()
}

func TestFSStencilBlowsUpDirectoryNotIVY(t *testing.T) {
	const n = 4 // all four 8-byte words pack into one 32B line
	p := FSStencil{}.params(SizeTest)

	dir := runProtocol(t, "fsstencil", n, coherence.KindDirectory)
	// Communicate-phase stores invalidate the line-mates' copies; the
	// run-until-horizon scheduler batches each processor's updates, so
	// the floor is per proc per iteration (each mate reloads at least
	// once per round), not per update — cold misses alone cannot reach
	// it, only sustained false-sharing ping-pong can.
	floor := uint64(p.Iters * n)
	if dir.Invalidations < floor {
		t.Errorf("directory Invalidations = %d, want >= %d (false-sharing blowup)", dir.Invalidations, floor)
	}
	if dir.RemoteTrips < floor {
		t.Errorf("directory RemoteTrips = %d, want >= %d", dir.RemoteTrips, floor)
	}
	if dir.PageFaults != 0 || dir.PageTransfers != 0 || dir.PageInvalidations != 0 {
		t.Errorf("directory backend touched page counters: %+v", dir)
	}

	ivy := runProtocol(t, "fsstencil", n, coherence.KindIVY)
	// IVY never accounts line-level invalidations; the same access
	// stream shows up as page traffic instead.
	if ivy.Invalidations != 0 {
		t.Errorf("ivy Invalidations = %d, want 0 (page backend has no line metric)", ivy.Invalidations)
	}
	if ivy.Writebacks != 0 {
		t.Errorf("ivy Writebacks = %d, want 0", ivy.Writebacks)
	}
	if ivy.PageFaults == 0 {
		t.Error("ivy PageFaults = 0, want > 0 (shared line is also a shared page)")
	}
}

func TestBarnesWriteSharingLightsUpBothProtocols(t *testing.T) {
	// Tree-build stores scatter concurrent writers over hash-distributed
	// nodes: the directory backend must record line invalidations, and
	// the IVY backend must see the same contention as page-ownership
	// churn. Each backend stays silent in the other's vocabulary.
	const n = 4
	dir := runProtocol(t, "barnes", n, coherence.KindDirectory)
	if dir.Invalidations == 0 {
		t.Error("directory Invalidations = 0; concurrent tree writers must collide")
	}
	if dir.PageFaults != 0 || dir.PageTransfers != 0 || dir.PageInvalidations != 0 {
		t.Errorf("directory backend touched page counters: %+v", dir)
	}
	ivy := runProtocol(t, "barnes", n, coherence.KindIVY)
	if ivy.Invalidations != 0 {
		t.Errorf("ivy Invalidations = %d, want 0 (page backend has no line metric)", ivy.Invalidations)
	}
	if ivy.PageInvalidations == 0 {
		t.Error("ivy PageInvalidations = 0; tree writes must churn page ownership")
	}
	if ivy.PageFaults == 0 {
		t.Error("ivy PageFaults = 0, want > 0")
	}
}

func TestWaterReadSharingStaysQuietNextToBarnes(t *testing.T) {
	// Water's sharing is read-only (peers' position blocks are only ever
	// loaded; stores stay in private regions) — the lone write-shared
	// line is the reduction accumulator. Its invalidation traffic must
	// therefore be a small fraction of barnes's under the directory
	// backend, while the all-pairs read bursts still show up as remote
	// reads and page copies.
	const n = 4
	water := runProtocol(t, "water", n, coherence.KindDirectory)
	barnes := runProtocol(t, "barnes", n, coherence.KindDirectory)
	if water.RemoteTrips == 0 {
		t.Error("water directory RemoteTrips = 0; the broadcast phase must read remote homes")
	}
	if water.Invalidations*4 >= barnes.Invalidations {
		t.Errorf("read-mostly water (%d invalidations) must stay far below barnes (%d)",
			water.Invalidations, barnes.Invalidations)
	}
	ivy := runProtocol(t, "water", n, coherence.KindIVY)
	if ivy.PageTransfers == 0 {
		t.Error("ivy PageTransfers = 0; broadcast reads must install page copies")
	}
}

func TestPageThrashBlowsUpIVYNotDirectory(t *testing.T) {
	const n = 4 // four distinct 32B lines, one shared 4kB page
	p := PageThrash{}.params(SizeTest)

	dir := runProtocol(t, "pagethrash", n, coherence.KindDirectory)
	// Distinct lines: after the cold misses every processor holds its
	// own line modified, so the directory protocol goes quiet.
	if dir.Invalidations != 0 {
		t.Errorf("directory Invalidations = %d, want 0 (lines are disjoint)", dir.Invalidations)
	}

	ivy := runProtocol(t, "pagethrash", n, coherence.KindIVY)
	// One RW page ping-pongs between the writers: at minimum each
	// processor re-faults once per shared phase.
	floor := uint64(p.Iters * n)
	if ivy.PageFaults < floor {
		t.Errorf("ivy PageFaults = %d, want >= %d (ownership ping-pong)", ivy.PageFaults, floor)
	}
	if ivy.PageTransfers == 0 {
		t.Error("ivy PageTransfers = 0, want > 0")
	}
	if ivy.PageInvalidations == 0 {
		t.Error("ivy PageInvalidations = 0, want > 0")
	}
	// The page backend must also dwarf the directory backend's remote
	// traffic on this workload — the point of choosing granularity.
	if ivy.PageFaults <= dir.Invalidations {
		t.Errorf("ivy PageFaults = %d not above directory Invalidations = %d", ivy.PageFaults, dir.Invalidations)
	}
}
