package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
	"dsmphase/internal/rng"
)

// Radix models SPLASH-2 Radix sort (extension beyond the paper's
// Table II): an iterative radix sort whose passes alternate a local
// histogram phase, a global prefix-sum phase (every processor reads
// every other processor's histogram), and a permutation phase that
// scatters keys to their destination processors — the most aggressive
// all-to-all write traffic of any workload here.
//
// Phase-detection relevance: the three kernels share little code, but
// the permutation's *destination distribution* changes every pass as
// the keys get sorted (early passes scatter uniformly, later passes
// concentrate on nearby processors), so the same permute code shows a
// drifting DDS across passes — another instance of the paper's
// same-code/different-distribution scenario.
type Radix struct{}

func init() { Register(Radix{}) }

// Name implements Workload.
func (Radix) Name() string { return "radix" }

// Description implements Workload.
func (Radix) Description() string {
	return "SPLASH-2 Radix sort extension (histogram / global scan / all-to-all permutation passes)"
}

type radixParams struct {
	Keys   int
	Passes int
	Radix  int
}

func (Radix) params(sz Size) radixParams {
	switch sz {
	case SizeTest:
		return radixParams{Keys: 1 << 16, Passes: 2, Radix: 256}
	case SizeSmall:
		return radixParams{Keys: 1 << 18, Passes: 3, Radix: 256}
	default:
		return radixParams{Keys: 1 << 20, Passes: 4, Radix: 256}
	}
}

// InputSet implements Workload.
func (w Radix) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d keys, radix %d, %d passes", p.Keys, p.Radix, p.Passes)
}

const pcRadix = 0x6000_0000

// radixChunk is the number of keys per work item.
const radixChunk = 512

type radixRun struct {
	n       int
	p       radixParams
	seed    uint64
	perProc int // keys per processor
}

// keyAddr is the address of key index k in processor owner's key region.
func (r *radixRun) keyAddr(owner int, k int) uint64 {
	return machine.AddrAt(owner, uint64(k)*8)
}

// histAddr is processor owner's histogram bucket b.
func (r *radixRun) histAddr(owner, b int) uint64 {
	return machine.AddrAt(owner, 1<<28|uint64(b)*8)
}

// destOwner returns the destination processor of key k in pass: early
// passes scatter near-uniformly; later passes concentrate around the
// key's final sorted position (its owner's neighbourhood).
func (r *radixRun) destOwner(tid, k, pass int) int {
	h := rng.Hash64(r.seed ^ uint64(tid)<<40 ^ uint64(k)<<8 ^ uint64(pass))
	spread := r.n >> uint(pass) // halves each pass
	if spread < 1 {
		spread = 1
	}
	return (tid + int(h%uint64(spread))) % r.n
}

// Radix over the IR: each pass is three barrier-closed phases —
// histogram, global scan, permutation — with one BlockItem per
// radixChunk of keys (histogram, permutation) or per thread (scan),
// exactly the batch structure the pre-IR emitter produced (pinned by
// TestIRStreamEquivalenceLURadix). The histogram and scan blocks carry
// no per-pass state, so one instance serves every pass; the permute
// block is per pass because the destination spread shrinks with it.

// radixChunks lists [lo, hi) key chunks of thread tid's partition.
func (r *radixRun) chunks(tid int) []BlockItem {
	var items []BlockItem
	for s := 0; s < r.perProc; s += radixChunk {
		e := s + radixChunk
		if e > r.perProc {
			e = r.perProc
		}
		items = append(items, BlockItem{A: tid, B: s, C: e})
	}
	return items
}

// radixHistB is the local histogram kernel.
type radixHistB struct{ r *radixRun }

func (b *radixHistB) Items(c *Ctx, tid int) []BlockItem { return b.r.chunks(tid) }
func (b *radixHistB) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	b.r.emitHist(e, it.A, it.B, it.C)
}

// radixScanB is the global prefix-sum kernel: one item per thread.
type radixScanB struct{ r *radixRun }

func (b *radixScanB) Items(c *Ctx, tid int) []BlockItem { return []BlockItem{{A: tid}} }
func (b *radixScanB) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	b.r.emitScan(e, it.A)
}

// radixPermuteB is pass's all-to-all key scatter.
type radixPermuteB struct {
	r    *radixRun
	pass int
}

func (b *radixPermuteB) Items(c *Ctx, tid int) []BlockItem { return b.r.chunks(tid) }
func (b *radixPermuteB) Emit(c *Ctx, e *isa.Emitter, it BlockItem) {
	b.r.emitPermute(e, it.A, it.B, it.C, b.pass)
}

// Threads implements Workload.
func (w Radix) Threads(n int, sz Size, seed uint64) []isa.Thread {
	p := w.params(sz)
	run := &radixRun{n: n, p: p, seed: seed, perProc: p.Keys / n}
	prog := &Program{BarrierPC: pcRadix + 0xF00}
	hist := &radixHistB{r: run}
	scan := &radixScanB{r: run}
	for pass := 0; pass < p.Passes; pass++ {
		prog.Phases = append(prog.Phases,
			Phase{Blocks: []Block{hist}},
			Phase{Blocks: []Block{scan}},
			Phase{Blocks: []Block{&radixPermuteB{r: run, pass: pass}}},
		)
	}
	return prog.Threads(n, seed)
}

// emitHist: local histogram of the chunk's key digits.
func (r *radixRun) emitHist(e *isa.Emitter, tid, lo, hi int) {
	const pc = pcRadix + 0x000
	for k := lo; k < hi; k++ {
		e.Load(pc+0, r.keyAddr(tid, k))
		e.Int(pc+4, 2) // digit extraction
		e.Store(pc+8, r.histAddr(tid, k%r.p.Radix))
		e.LoopBranch(pc+12, k-lo, hi-lo)
	}
}

// emitScan: global prefix sum — read every processor's histogram,
// sampled by bucket stride to bound instruction counts.
func (r *radixRun) emitScan(e *isa.Emitter, tid int) {
	const pc = pcRadix + 0x100
	stride := 16
	for q := 0; q < r.n; q++ {
		for b := 0; b < r.p.Radix; b += stride {
			e.Load(pc+0, r.histAddr(q, b))
			e.Int(pc+4, 1)
			e.LoopBranch(pc+8, b/stride, r.p.Radix/stride)
		}
		e.LoopBranch(pc+12, q, r.n)
	}
	// Store the scanned offsets locally.
	for b := 0; b < r.p.Radix; b += stride {
		e.Store(pc+16, r.histAddr(tid, b))
		e.LoopBranch(pc+20, b/stride, r.p.Radix/stride)
	}
}

// emitPermute: scatter each key to its destination processor's region —
// the all-to-all phase whose destination spread shrinks every pass.
func (r *radixRun) emitPermute(e *isa.Emitter, tid, lo, hi, pass int) {
	const pc = pcRadix + 0x200
	for k := lo; k < hi; k++ {
		e.Load(pc+0, r.keyAddr(tid, k))
		e.Int(pc+4, 2)
		dst := r.destOwner(tid, k, pass)
		e.Store(pc+8, r.keyAddr(dst, k)+1<<27) // destination buffer region
		e.LoopBranch(pc+12, k-lo, hi-lo)
	}
}
