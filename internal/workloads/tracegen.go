package workloads

// Trace ingestion: turning an externally captured address trace
// (trace.Access records) into a registered workload. The trace's
// per-processor streams are split at sync records into barrier-
// delimited segments; each segment becomes one IR phase whose Replay
// block re-emits the captured instructions, remapping memory homes
// modulo the run's processor count so a P-proc capture replays on any
// machine size. Syncs themselves are dropped from the streams — the
// Program's own barrier structure reproduces them — which is what lets
// the detectors see the same interval boundaries the capture had.

import (
	"encoding/json"
	"fmt"

	"dsmphase/internal/isa"
	"dsmphase/internal/trace"
)

// FromTrace builds a registrable workload that replays an address
// trace. The returned workload's canonical source is a self-contained
// spec with the records inlined, so it hashes and ships exactly like a
// hand-written spec with a "trace" stanza.
func FromTrace(name, desc string, accs []trace.Access) (*SpecWorkload, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if desc == "" {
		return nil, fmt.Errorf("workloads: trace %q: description is required", name)
	}
	return traceWorkload(name, desc, accs)
}

func traceWorkload(name, desc string, recs []trace.Access) (*SpecWorkload, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("workloads: trace %q has no records", name)
	}
	procs := 0
	for i, a := range recs {
		if a.Proc < 0 {
			return nil, fmt.Errorf("workloads: trace %q record %d: negative proc %d", name, i, a.Proc)
		}
		if a.Proc >= procs {
			procs = a.Proc + 1
		}
	}
	// Per-proc barrier-delimited segments. segs[tp][s] is trace
	// processor tp's instruction stream between syncs s-1 and s.
	segs := make([][][]isa.Inst, procs)
	var barrierPC uint32
	for i := range segs {
		segs[i] = make([][]isa.Inst, 1)
	}
	for i, a := range recs {
		in, err := a.Inst()
		if err != nil {
			return nil, fmt.Errorf("workloads: trace %q record %d: %w", name, i, err)
		}
		tp := a.Proc
		if in.Op == isa.OpSync {
			if a.N > 1 {
				return nil, fmt.Errorf("workloads: trace %q record %d: sync records cannot repeat", name, i)
			}
			if barrierPC == 0 {
				barrierPC = in.PC
			}
			segs[tp] = append(segs[tp], nil)
			continue
		}
		rep := a.N
		if rep < 1 {
			rep = 1
		}
		last := len(segs[tp]) - 1
		for r := 0; r < rep; r++ {
			segs[tp][last] = append(segs[tp][last], in)
		}
	}
	syncs := len(segs[0]) - 1
	for tp := 1; tp < procs; tp++ {
		if got := len(segs[tp]) - 1; got != syncs {
			return nil, fmt.Errorf("workloads: trace %q: proc %d has %d syncs, proc 0 has %d (barrier counts must match)", name, tp, got, syncs)
		}
	}
	for tp := 0; tp < procs; tp++ {
		total := 0
		for _, seg := range segs[tp] {
			total += len(seg)
		}
		if total == 0 && syncs == 0 {
			return nil, fmt.Errorf("workloads: trace %q: proc %d has no instructions", name, tp)
		}
	}
	// Drop a universally empty trailing segment: the capture ended
	// right at a barrier, so the final phase keeps its barrier.
	phases := syncs + 1
	if syncs > 0 {
		empty := true
		for tp := 0; tp < procs && empty; tp++ {
			empty = len(segs[tp][syncs]) == 0
		}
		if empty {
			phases = syncs
		}
	}
	if barrierPC == 0 {
		barrierPC = specPCBase + 0xFF00
	}

	// Canonical source: the equivalent inline-records spec, so a trace
	// ingested via FromTrace and the same records pasted into a .wdl
	// "trace" stanza register as the same definition.
	src, err := json.Marshal(rawSpec{
		Name:        name,
		Description: desc,
		Trace:       &rawTrace{Records: recs},
	})
	if err != nil {
		return nil, fmt.Errorf("workloads: trace %q: %w", name, err)
	}
	canon, hash, err := canonHash(src)
	if err != nil {
		return nil, err
	}

	nRecs := len(recs)
	sw := &SpecWorkload{
		name: name,
		desc: desc,
		inputSet: func(Size) string {
			return fmt.Sprintf("replayed trace: %d procs, %d records", procs, nRecs)
		},
		src:  canon,
		hash: hash,
		build: func(n int, _ Size) *Program {
			prog := &Program{BarrierPC: barrierPC}
			for s := 0; s < phases; s++ {
				streams := make([][]isa.Inst, procs)
				for tp := 0; tp < procs; tp++ {
					streams[tp] = segs[tp][s]
				}
				prog.Phases = append(prog.Phases, Phase{
					Blocks:    []Block{&Replay{Streams: streams}},
					NoBarrier: s == phases-1 && phases == syncs+1,
				})
			}
			return prog
		},
	}
	return sw, nil
}
