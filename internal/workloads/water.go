package workloads

import (
	"fmt"

	"dsmphase/internal/isa"
)

// Water models SPLASH-2 Water-Nsquared (Table II: 512 molecules): an
// O(N²) molecular-dynamics code where every processor owns a block of
// molecules and each timestep evaluates pairwise interactions against
// every other processor's block. The missing Table II entry on the
// regular all-pairs side.
//
// Expressed over the IR, each timestep is:
//
//   - intra-molecular forces: a private Stride sweep over the owned
//     molecules' atom state (purely local FP work);
//   - inter-molecular forces: a Broadcast of every peer's
//     position block — per-thread traffic stays roughly constant as n
//     grows (fewer molecules per peer, more peers), the signature
//     all-pairs pattern;
//   - position/velocity update: a private Stride sweep;
//   - every third step, a potential-energy Reduction over the
//     strip-partitioned molecule array into the global accumulator.
//
// Substitution argument: Water-Nsquared's phase skeleton (intraf /
// interf / predic-correc, barrier-separated) and its machine-visible
// behavior — long local phases punctuated by all-to-all read bursts
// and a serializing energy sum — survive; the force arithmetic is
// abstracted into FP-op counts per pair read.
type Water struct{}

func init() { Register(Water{}) }

// Name implements Workload.
func (Water) Name() string { return "water" }

// Description implements Workload.
func (Water) Description() string {
	return "SPLASH-2 Water-Nsquared stand-in (private intraf, all-pairs interf broadcast, energy reduction)"
}

type waterParams struct {
	Molecules int
	Steps     int
}

func (Water) params(sz Size) waterParams {
	switch sz {
	case SizeTest:
		return waterParams{Molecules: 216, Steps: 10}
	case SizeSmall:
		return waterParams{Molecules: 343, Steps: 12}
	default:
		return waterParams{Molecules: 512, Steps: 16} // Table II scale
	}
}

// InputSet implements Workload.
func (w Water) InputSet(sz Size) string {
	p := w.params(sz)
	return fmt.Sprintf("%d molecules, %d timesteps", p.Molecules, p.Steps)
}

const pcWater = 0x7300_0000

// waterAtoms is the per-molecule atom-state expansion factor of the
// intra-molecular sweep (three atoms, positions+velocities).
const waterAtoms = 6

// waterPairs is the sampled pair-interaction factor: each owned
// molecule reads waterPairs of every peer's molecules per timestep, so
// per-thread inter-molecular traffic stays roughly constant as n grows
// ((n-1) peers × M/n molecules × waterPairs) — the O(N²) all-pairs
// signature without emitting the full quadratic stream.
const waterPairs = 8

// program builds the IR form for one (n, size) geometry. perProc is at
// least 1 so the workload stays well-formed when n exceeds the
// molecule count.
func (w Water) program(n int, sz Size) *Program {
	p := w.params(sz)
	perProc := p.Molecules / n
	if perProc < 1 {
		perProc = 1
	}
	prog := &Program{BarrierPC: pcWater + 0xF00}
	for ts := 0; ts < p.Steps; ts++ {
		prog.Phases = append(prog.Phases,
			Phase{Blocks: []Block{&Stride{
				PC: pcWater + 0x000, Count: perProc * waterAtoms, IntOps: 1, FPOps: 2,
				Store: true, Wrap: 1024,
				Region: Region{Home: OwnerThread, Base: 1 << 24, ElemBytes: 8},
			}}},
			Phase{Blocks: []Block{&Broadcast{
				PC: pcWater + 0x100, Elems: perProc * waterPairs, FPOps: 2,
				Region: Region{Home: OwnerThread, Base: 1 << 26, ElemBytes: 8},
			}}},
			Phase{Blocks: []Block{&Stride{
				PC: pcWater + 0x200, Count: perProc, FPOps: 1, Store: true,
				Region: Region{Home: OwnerThread, Base: 1 << 24, ElemBytes: 8},
			}}},
		)
		if ts%3 == 2 {
			prog.Phases = append(prog.Phases, Phase{Blocks: []Block{&Reduction{
				PC: pcWater + 0x300, Elems: p.Molecules, FPOps: 1,
				Base: 1 << 28, ElemBytes: 8,
				Accum: Region{Home: 0, Base: 1 << 30},
			}}})
		}
	}
	return prog
}

// Threads implements Workload.
func (w Water) Threads(n int, sz Size, seed uint64) []isa.Thread {
	return w.program(n, sz).Threads(n, seed)
}
