// Package workloads provides synthetic, executable stand-ins for the
// paper's Table II applications: SPLASH-2 LU and FMM, and SPEC-OMP Art
// and Equake (MinneSPEC-Large).
//
// The real applications cannot be run on this simulator (no compiler or
// binary front end exists), so each workload is rebuilt as a
// deterministic instruction-stream generator that preserves the
// observables phase detection depends on:
//
//   - per-phase basic-block composition (distinct static PCs per kernel,
//     realistic loop-branch structure for the gshare predictor),
//   - per-phase data placement and sharing (block ownership in LU,
//     spatial partitions in FMM/Equake, broadcast weight reads in Art),
//   - temporal structure (LU's shrinking trailing matrix, FMM and
//     Equake's timesteps, Art's train/test alternation),
//   - load imbalance (barrier arrival skew), which the machine turns
//     into CPI variance.
//
// See DESIGN.md §2 for the substitution argument.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"dsmphase/internal/isa"
)

// Size selects a scaled input set.
type Size int

const (
	// SizeTest is a seconds-scale input for unit tests.
	SizeTest Size = iota
	// SizeSmall is the default for benchmarks and quick experiments.
	SizeSmall
	// SizeFull approximates the paper's input scale (Table II).
	SizeFull
)

// String returns the size name.
func (s Size) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeSmall:
		return "small"
	case SizeFull:
		return "full"
	default:
		return fmt.Sprintf("size(%d)", int(s))
	}
}

// ParseSize converts a name to a Size.
func ParseSize(name string) (Size, error) {
	switch name {
	case "test":
		return SizeTest, nil
	case "small":
		return SizeSmall, nil
	case "full":
		return SizeFull, nil
	default:
		return 0, fmt.Errorf("workloads: unknown size %q (want test, small or full)", name)
	}
}

// Workload is one application the experiments run.
type Workload interface {
	// Name is the Table II application name (lowercase).
	Name() string
	// Description summarizes what the synthetic kernel models.
	Description() string
	// InputSet describes the input for the given size, in the style of
	// Table II.
	InputSet(sz Size) string
	// Threads instantiates the workload for an n-processor run. All
	// threads emit the same number of Sync (barrier) instructions.
	Threads(n int, sz Size, seed uint64) []isa.Thread
}

// The registry holds the built-in workloads (registered from init
// functions, definition hash 0) and any dynamically registered ones
// (DSL specs and ingested traces, keyed by their definition hash). A
// mutex guards it because the coordinator service registers dynamic
// workloads from request-handling goroutines.
var (
	registryMu sync.RWMutex
	registry   = map[string]Workload{}
	// defHashes maps dynamically registered names to the hash of their
	// canonical definition; built-ins are absent (hash 0).
	defHashes = map[string]uint64{}
)

// Register adds a built-in workload to the registry (called from init
// functions).
func Register(w Workload) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[w.Name()]; dup {
		panic("workloads: duplicate registration of " + w.Name())
	}
	registry[w.Name()] = w
}

// RegisterDynamic adds a runtime-defined workload (a parsed DSL spec or
// an ingested trace) under its definition hash. Re-registering the same
// name with the same hash is a no-op, so every worker process and every
// repeat submission can load the same spec file idempotently; the same
// name with a different definition — or colliding with a built-in — is
// an error, because live jobs and result caches key on the name's
// fingerprint staying stable. Bump the workload's name to change its
// definition.
func RegisterDynamic(w Workload, hash uint64) error {
	if hash == 0 {
		return fmt.Errorf("workloads: dynamic workload %q needs a non-zero definition hash", w.Name())
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if prev, ok := defHashes[w.Name()]; ok {
		if prev == hash {
			return nil
		}
		return fmt.Errorf("workloads: %q is already registered with a different definition (hash %016x vs %016x); rename the workload to change its definition", w.Name(), prev, hash)
	}
	if _, builtin := registry[w.Name()]; builtin {
		return fmt.Errorf("workloads: %q collides with a built-in workload", w.Name())
	}
	registry[w.Name()] = w
	defHashes[w.Name()] = hash
	return nil
}

// DefinitionHash returns the definition hash a dynamic workload was
// registered under, or 0 for built-ins and unknown names. The harness
// folds non-zero hashes into plan fingerprints so two specs sharing a
// name but not a definition can never satisfy each other's artifacts.
func DefinitionHash(name string) uint64 {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return defHashes[name]
}

// removeDynamic drops a dynamically registered workload. Test-only: the
// production registry is append-only by design.
func removeDynamic(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := defHashes[name]; ok {
		delete(defHashes, name)
		delete(registry, name)
	}
}

// ByName looks a workload up.
func ByName(name string) (Workload, error) {
	registryMu.RLock()
	w, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return w, nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the registered workloads in name order.
func All() []Workload {
	names := Names()
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// item is one unit of scripted work: either a barrier or a workload-
// specific kernel invocation identified by kind with up to four integer
// arguments.
type item struct {
	kind       int
	a, b, c, d int
}

// kindBarrier marks a barrier arrival.
const kindBarrier = -1

// scriptThread executes a precomputed list of work items, one item per
// batch. Emission is delegated to the owning workload's kernel emitter.
type scriptThread struct {
	items []item
	pos   int
	emit  func(it item, e *isa.Emitter)
	// barrierPC is the static PC of the barrier arrival instruction.
	barrierPC uint32
}

func (t *scriptThread) NextBatch(e *isa.Emitter) bool {
	if t.pos >= len(t.items) {
		return false
	}
	it := t.items[t.pos]
	t.pos++
	if it.kind == kindBarrier {
		e.Sync(t.barrierPC)
		return true
	}
	t.emit(it, e)
	return true
}

// CountBarriers returns how many barrier items a thread's script holds —
// used by tests to verify all threads agree.
func countBarriers(items []item) int {
	n := 0
	for _, it := range items {
		if it.kind == kindBarrier {
			n++
		}
	}
	return n
}
