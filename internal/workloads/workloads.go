// Package workloads provides synthetic, executable stand-ins for the
// paper's Table II applications: SPLASH-2 LU and FMM, and SPEC-OMP Art
// and Equake (MinneSPEC-Large).
//
// The real applications cannot be run on this simulator (no compiler or
// binary front end exists), so each workload is rebuilt as a
// deterministic instruction-stream generator that preserves the
// observables phase detection depends on:
//
//   - per-phase basic-block composition (distinct static PCs per kernel,
//     realistic loop-branch structure for the gshare predictor),
//   - per-phase data placement and sharing (block ownership in LU,
//     spatial partitions in FMM/Equake, broadcast weight reads in Art),
//   - temporal structure (LU's shrinking trailing matrix, FMM and
//     Equake's timesteps, Art's train/test alternation),
//   - load imbalance (barrier arrival skew), which the machine turns
//     into CPI variance.
//
// See DESIGN.md §2 for the substitution argument.
package workloads

import (
	"fmt"
	"sort"

	"dsmphase/internal/isa"
)

// Size selects a scaled input set.
type Size int

const (
	// SizeTest is a seconds-scale input for unit tests.
	SizeTest Size = iota
	// SizeSmall is the default for benchmarks and quick experiments.
	SizeSmall
	// SizeFull approximates the paper's input scale (Table II).
	SizeFull
)

// String returns the size name.
func (s Size) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeSmall:
		return "small"
	case SizeFull:
		return "full"
	default:
		return fmt.Sprintf("size(%d)", int(s))
	}
}

// ParseSize converts a name to a Size.
func ParseSize(name string) (Size, error) {
	switch name {
	case "test":
		return SizeTest, nil
	case "small":
		return SizeSmall, nil
	case "full":
		return SizeFull, nil
	default:
		return 0, fmt.Errorf("workloads: unknown size %q (want test, small or full)", name)
	}
}

// Workload is one application the experiments run.
type Workload interface {
	// Name is the Table II application name (lowercase).
	Name() string
	// Description summarizes what the synthetic kernel models.
	Description() string
	// InputSet describes the input for the given size, in the style of
	// Table II.
	InputSet(sz Size) string
	// Threads instantiates the workload for an n-processor run. All
	// threads emit the same number of Sync (barrier) instructions.
	Threads(n int, sz Size, seed uint64) []isa.Thread
}

var registry = map[string]Workload{}

// Register adds a workload to the registry (called from init functions).
func Register(w Workload) {
	if _, dup := registry[w.Name()]; dup {
		panic("workloads: duplicate registration of " + w.Name())
	}
	registry[w.Name()] = w
}

// ByName looks a workload up.
func ByName(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return w, nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the registered workloads in name order.
func All() []Workload {
	names := Names()
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// item is one unit of scripted work: either a barrier or a workload-
// specific kernel invocation identified by kind with up to four integer
// arguments.
type item struct {
	kind       int
	a, b, c, d int
}

// kindBarrier marks a barrier arrival.
const kindBarrier = -1

// scriptThread executes a precomputed list of work items, one item per
// batch. Emission is delegated to the owning workload's kernel emitter.
type scriptThread struct {
	items []item
	pos   int
	emit  func(it item, e *isa.Emitter)
	// barrierPC is the static PC of the barrier arrival instruction.
	barrierPC uint32
}

func (t *scriptThread) NextBatch(e *isa.Emitter) bool {
	if t.pos >= len(t.items) {
		return false
	}
	it := t.items[t.pos]
	t.pos++
	if it.kind == kindBarrier {
		e.Sync(t.barrierPC)
		return true
	}
	t.emit(it, e)
	return true
}

// CountBarriers returns how many barrier items a thread's script holds —
// used by tests to verify all threads agree.
func countBarriers(items []item) int {
	n := 0
	for _, it := range items {
		if it.kind == kindBarrier {
			n++
		}
	}
	return n
}
