package workloads

import (
	"reflect"
	"testing"

	"dsmphase/internal/isa"
	"dsmphase/internal/machine"
)

// drain runs a thread to completion, returning its instruction stream.
func drain(t *testing.T, th isa.Thread, maxInstr int) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	e := isa.NewEmitter(4096)
	for {
		e.Reset()
		if !th.NextBatch(e) {
			return out
		}
		out = append(out, e.Take()...)
		if len(out) > maxInstr {
			t.Fatalf("thread exceeded %d instructions", maxInstr)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"art", "barnes", "equake", "fmm", "fsstencil", "lu", "ocean", "pagethrash", "radix", "water"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	if len(All()) != 10 {
		t.Errorf("All() has %d workloads", len(All()))
	}
	if _, err := ByName("lu"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName must reject unknown names")
	}
}

func TestParseSize(t *testing.T) {
	for name, want := range map[string]Size{"test": SizeTest, "small": SizeSmall, "full": SizeFull} {
		got, err := ParseSize(name)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = (%v, %v)", name, got, err)
		}
		if got.String() != name {
			t.Errorf("String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("ParseSize must reject unknown sizes")
	}
	if Size(9).String() == "" {
		t.Error("unknown size must still stringify")
	}
}

func TestInputSetsMentionPaperScale(t *testing.T) {
	lu, _ := ByName("lu")
	if got := lu.InputSet(SizeFull); got != "512×512 matrix, 16×16 block" {
		t.Errorf("LU full input = %q (Table II says 512×512, 16×16)", got)
	}
	fmm, _ := ByName("fmm")
	if got := fmm.InputSet(SizeFull); got != "65536 particles" {
		t.Errorf("FMM full input = %q (Table II says 65,536 particles)", got)
	}
}

func TestAllWorkloadsBasicStructure(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			for _, n := range []int{1, 2, 4} {
				ths := w.Threads(n, SizeTest, 1)
				if len(ths) != n {
					t.Fatalf("n=%d: got %d threads", n, len(ths))
				}
				var barriers []int
				var totals []int
				for _, th := range ths {
					stream := drain(t, th, 50_000_000)
					if len(stream) == 0 {
						t.Fatalf("n=%d: empty thread", n)
					}
					nb, nt := 0, 0
					for _, in := range stream {
						nt++
						switch {
						case in.Op == isa.OpSync:
							nb++
						case in.Op.IsMem():
							home := int(in.Addr >> machine.HomeShift)
							if home < 0 || home >= n {
								t.Fatalf("n=%d: address %#x has home %d", n, in.Addr, home)
							}
						}
					}
					barriers = append(barriers, nb)
					totals = append(totals, nt)
				}
				for i := 1; i < n; i++ {
					if barriers[i] != barriers[0] {
						t.Fatalf("n=%d: thread %d has %d barriers, thread 0 has %d",
							n, i, barriers[i], barriers[0])
					}
				}
				if barriers[0] == 0 && n > 1 {
					t.Errorf("n=%d: no barriers emitted", n)
				}
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			a := drain(t, w.Threads(2, SizeTest, 7)[0], 50_000_000)
			b := drain(t, w.Threads(2, SizeTest, 7)[0], 50_000_000)
			if !reflect.DeepEqual(a, b) {
				t.Error("same seed must reproduce the identical stream")
			}
		})
	}
}

func TestWorkloadSeedChangesStream(t *testing.T) {
	// Seed-sensitive workloads (fmm far-field, art winners, equake mesh)
	// must actually vary with the seed.
	for _, name := range []string{"fmm", "art", "equake"} {
		w, _ := ByName(name)
		a := drain(t, w.Threads(2, SizeTest, 1)[0], 50_000_000)
		b := drain(t, w.Threads(2, SizeTest, 2)[0], 50_000_000)
		if reflect.DeepEqual(a, b) {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

func TestLUOwnershipCoversAllProcs(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		pr, pc := procGrid(n)
		if pr*pc != n {
			t.Fatalf("procGrid(%d) = %d×%d", n, pr, pc)
		}
		run := &luRun{n: n, G: 8, B: 8, pr: pr, pc: pc, depth: 2}
		seen := map[int]bool{}
		for bi := 0; bi < run.G; bi++ {
			for bj := 0; bj < run.G; bj++ {
				o := run.owner(bi, bj)
				if o < 0 || o >= n {
					t.Fatalf("owner(%d,%d) = %d out of range", bi, bj, o)
				}
				seen[o] = true
			}
		}
		if len(seen) != n {
			t.Errorf("n=%d: only %d owners used", n, len(seen))
		}
	}
}

func TestLUKernelsHaveDistinctPCs(t *testing.T) {
	// The three LU kernels must be distinguishable by the BBV: their
	// branch PCs must not overlap.
	lu, _ := ByName("lu")
	ths := lu.Threads(1, SizeTest, 1)
	stream := drain(t, ths[0], 50_000_000)
	pcs := map[uint32]bool{}
	for _, in := range stream {
		if in.Op == isa.OpBranch {
			pcs[in.PC] = true
		}
	}
	if len(pcs) < 6 {
		t.Errorf("LU uses only %d distinct branch PCs; kernels must differ", len(pcs))
	}
}

func TestWorkloadsRunOnMachine(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			cfg := machine.DefaultConfig(2)
			cfg.IntervalInstructions = 20_000
			m := machine.New(cfg, w.Threads(2, SizeTest, 1))
			sum, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if sum.Instructions == 0 || sum.Cycles == 0 {
				t.Fatalf("empty run: %+v", sum)
			}
			if sum.Intervals == 0 {
				t.Fatalf("no intervals recorded (instrs=%d)", sum.Instructions)
			}
			if err := m.Protocol().CheckInvariants(); err != nil {
				t.Error(err)
			}
			for _, r := range m.Records() {
				if r.CPI() <= 0 {
					t.Errorf("interval %d/%d CPI = %v", r.Proc, r.Index, r.CPI())
				}
				if r.DDS < 0 {
					t.Errorf("negative DDS: %v", r.DDS)
				}
			}
		})
	}
}

func TestRemoteFractionVariesAcrossWorkloads(t *testing.T) {
	// Art's search phase is broadcast-remote; LU at 2 procs is mostly
	// local — the machine-visible locality must reflect that.
	frac := func(name string) float64 {
		w, _ := ByName(name)
		cfg := machine.DefaultConfig(4)
		cfg.IntervalInstructions = 10_000
		m := machine.New(cfg, w.Threads(4, SizeTest, 1))
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		var loc, rem uint64
		for _, r := range m.Records() {
			loc += r.LocalAccesses
			rem += r.RemoteAccesses
		}
		return float64(rem) / float64(loc+rem)
	}
	art := frac("art")
	lu := frac("lu")
	if art <= lu {
		t.Errorf("art remote fraction (%v) should exceed lu's (%v)", art, lu)
	}
	if art < 0.3 {
		t.Errorf("art remote fraction %v suspiciously low for a broadcast workload", art)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Register(LU{})
}

func TestCountBarriers(t *testing.T) {
	items := []item{{kind: 1}, {kind: kindBarrier}, {kind: 2}, {kind: kindBarrier}}
	if got := countBarriers(items); got != 2 {
		t.Errorf("countBarriers = %d, want 2", got)
	}
}
